package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestFigKernels runs the kernel throughput study at the small scale and
// checks the structural invariants: all four cases present with positive
// throughput, and the sum-factorized element kernel strictly faster than
// the dense reference. (The >= 2x acceptance gate is asserted on the
// committed BENCH_kernels.json from a quiet machine, not here, where CI
// noise at the small apply count would make it flaky.)
func TestFigKernels(t *testing.T) {
	tab, cases := FigKernels(Small)
	if tab == nil || len(tab.Rows) != len(cases) {
		t.Fatalf("table rows %d do not match cases %d", len(tab.Rows), len(cases))
	}
	byName := map[string]KernelCase{}
	for _, c := range cases {
		if c.SecondsPerApply <= 0 || c.ElemPerS <= 0 || c.DofPerS <= 0 {
			t.Errorf("%s: non-positive timing: %+v", c.Kernel, c)
		}
		byName[c.Kernel] = c
	}
	for _, name := range []string{"q2-naive", "q2-sumfactor", "op-q1", "op-q2"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing kernel case %q", name)
		}
	}
	sf := byName["q2-sumfactor"]
	if sf.SpeedupVsNaive <= 1 {
		t.Errorf("sum factorization not faster than dense reference: speedup %.3f", sf.SpeedupVsNaive)
	}
	if byName["q2-naive"].SpeedupVsNaive != 1 {
		t.Errorf("naive reference speedup must be 1, got %v", byName["q2-naive"].SpeedupVsNaive)
	}
	// Both operators ran on the same mesh: same element count, Q2 dofs
	// strictly more than Q1 dofs.
	q1, q2 := byName["op-q1"], byName["op-q2"]
	if q1.Elements != q2.Elements || q2.Dofs <= q1.Dofs {
		t.Errorf("operator cases inconsistent: q1 %+v, q2 %+v", q1, q2)
	}

	path := filepath.Join(t.TempDir(), "BENCH_kernels.json")
	if err := WriteKernelsJSON(path, cases); err != nil {
		t.Fatalf("WriteKernelsJSON: %v", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read json: %v", err)
	}
	var rec KernelsJSON
	if err := json.Unmarshal(buf, &rec); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(rec.Cases) != len(cases) || rec.Generated == "" {
		t.Errorf("json record incomplete: %+v", rec)
	}
}

package experiments

import (
	"fmt"
	"time"

	"rhea/internal/rhea"
	"rhea/internal/sim"
	"rhea/internal/stokes"
)

// TimeLoopCase holds rank-0 measurements of one time-loop run.
type TimeLoopCase struct {
	Label  string
	Reuse  bool
	Solves int     // Stokes Update count (Picard iterations x solves)
	Setups int     // mesh-dependent Setup count
	Setup  float64 // Timings.StokesSetup (s)
	Update float64 // Timings.StokesUpdate (s)
	Minres float64 // Timings.MINRES (s)
	Wall   float64 // total wall clock of the stepped loop (s)
	Nu     float64 // final Nusselt number (must not depend on reuse)
	Vrms   float64 // final RMS velocity (must not depend on reuse)
}

// BuildPerSolve is the per-solve cost of building the solver (setup +
// update averaged over all Stokes solves) — the quantity solver-state
// reuse is meant to shrink.
func (c TimeLoopCase) BuildPerSolve() float64 {
	if c.Solves == 0 {
		return 0
	}
	return (c.Setup + c.Update) / float64(c.Solves)
}

// FigTimeLoop measures the paper's Figure-10-style wall-clock breakdown
// of a multi-cycle Rayleigh–Bénard convection run — Stokes solve every
// time step, adaptation every AdaptEvery steps — with and without
// persistent solver reuse, on the fully matrix-free path (matfree apply +
// GMG preconditioner) where no fine-level matrix is ever assembled.
//
// With reuse the mesh-dependent setup (slot maps, ghost plans, GMG level
// meshes and transfer stencils) runs only after each Adapt; every Picard
// iteration in between refreshes just the viscosity-dependent half. The
// full-rebuild rows reproduce the pre-reuse behaviour for comparison, and
// the final diagnostics pin that both paths compute the same physics.
func FigTimeLoop(scale Scale) (*Table, []TimeLoopCase) {
	p := 2
	steps, adaptEvery := 12, 6
	base, maxLvl, target := uint8(3), uint8(5), int64(1200)
	if scale == Full {
		p = 4
		steps, adaptEvery = 16, 8
		target = 4000
		maxLvl = 6
	}
	t := &Table{
		Title: "time loop: persistent Stokes/GMG setup reuse across Picard iterations and timesteps",
		Header: []string{"mode", "solves", "setups", "setup s", "update s",
			"build/solve s", "minres s", "wall s", "Nu", "Vrms"},
		Notes: []string{
			fmt.Sprintf("Rayleigh-Benard blob run, %d ranks, %d steps (Stokes solve each), adapt every %d, Picard 2, matfree apply + GMG precond", p, steps, adaptEvery),
			"rebuild = full mesh-dependent setup every Picard iteration (pre-reuse behaviour); reuse = setup only after Adapt",
		},
	}
	var cases []TimeLoopCase
	for _, reuse := range []bool{false, true} {
		label := "rebuild"
		if reuse {
			label = "reuse"
		}
		var c TimeLoopCase
		sim.Run(p, func(r *sim.Rank) {
			cfg := blobCfg(base, maxLvl, target)
			cfg.MatrixFree = true
			cfg.Precond = stokes.PrecondGMG
			cfg.Picard = 2
			cfg.AdaptEvery = adaptEvery
			cfg.NoReuse = !reuse
			s := rhea.New(r, cfg)
			s.Times = rhea.Timings{} // discard construction costs
			r.Barrier()
			t0 := time.Now()
			for step := 1; step <= steps; step++ {
				s.SolveStokes()
				s.AdvectSteps(1)
				if step%adaptEvery == 0 {
					s.Adapt()
				}
			}
			r.Barrier()
			wall := time.Since(t0).Seconds()
			nu := s.Nusselt()       // collective
			vrms := s.RMSVelocity() // collective
			if r.ID() == 0 {
				tt := s.Times
				c = TimeLoopCase{
					Label: label, Reuse: reuse,
					Solves: steps * cfg.Picard, Setups: tt.StokesSetups,
					Setup: tt.StokesSetup, Update: tt.StokesUpdate,
					Minres: tt.MINRES, Wall: wall, Nu: nu, Vrms: vrms,
				}
			}
		})
		cases = append(cases, c)
		t.Rows = append(t.Rows, []string{
			c.Label, iN(c.Solves), iN(c.Setups), f3(c.Setup), f3(c.Update),
			fmt.Sprintf("%.4f", c.BuildPerSolve()), f3(c.Minres), f3(c.Wall),
			f3(c.Nu), f3(c.Vrms)})
	}
	if len(cases) == 2 && cases[1].BuildPerSolve() > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"reuse cuts per-solve build cost %.1fx (%.4f s -> %.4f s); setups %d -> %d (one per adaptation + initial)",
			cases[0].BuildPerSolve()/cases[1].BuildPerSolve(),
			cases[0].BuildPerSolve(), cases[1].BuildPerSolve(),
			cases[0].Setups, cases[1].Setups))
	}
	return t, cases
}

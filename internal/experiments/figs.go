package experiments

import (
	"fmt"
	"math"
	"sync"
	"time"

	"rhea/internal/fem"
	"rhea/internal/perfmodel"
	"rhea/internal/rhea"
	"rhea/internal/sim"
)

// Scale selects experiment sizes. Small keeps everything under a few
// seconds for tests and benchmarks; Full is for cmd/alpsbench runs.
type Scale int

const (
	Small Scale = iota
	Full
)

// blobCfg is the shared mantle-convection configuration.
func blobCfg(base, maxLvl uint8, target int64) rhea.Config {
	return rhea.Config{
		Dom: fem.UnitDomain,
		Ra:  1e5,
		InitialTemp: func(x [3]float64) float64 {
			r2 := (x[0]-0.5)*(x[0]-0.5) + (x[1]-0.5)*(x[1]-0.5) + (x[2]-0.2)*(x[2]-0.2)
			return (1 - x[2]) + 0.25*math.Exp(-r2/0.02)
		},
		Visc:        rhea.TemperatureDependent(1, 4.6), // 100x contrast
		BaseLevel:   base,
		MinLevel:    base - 1,
		MaxLevel:    maxLvl,
		TargetElems: target,
		Picard:      1,
		MinresTol:   1e-6,
		MinresMax:   600,
		InitAdapt:   1,
	}
}

// Fig2StokesWeakScaling reproduces the paper's Fig 2 table: MINRES
// iteration counts for the variable-viscosity Stokes solver under weak
// scaling (fixed elements per core). The paper runs 1 to 8192 cores with
// ~65K elements/core and sees 57 to 68 iterations; the reproduction runs
// scaled-down rank counts and checks the same flatness.
func Fig2StokesWeakScaling(scale Scale) *Table {
	ranks := []int{1, 2, 4, 8}
	basePerRank := int64(300)
	if scale == Full {
		ranks = []int{1, 2, 4, 8, 16}
		basePerRank = 2000
	}
	t := &Table{
		Title:  "Fig 2: weak scalability of variable-viscosity Stokes (MINRES iterations)",
		Header: []string{"#cores", "#elem", "#elem/core", "#dof", "MINRES #iterations"},
		Notes: []string{
			"paper: 1..8192 cores, 67K..539M elements, iterations 57..68 (flat)",
			"reproduction: goroutine ranks, same elements/core, same preconditioner",
		},
	}
	for _, p := range ranks {
		target := basePerRank * int64(p)
		var row []string
		sim.Run(p, func(r *sim.Rank) {
			cfg := blobCfg(3, 6, target)
			s := rhea.New(r, cfg)
			res := s.SolveStokes()
			n := s.Tree.NumGlobal() // collective: all ranks must call
			if r.ID() == 0 {
				dof := 4 * s.Mesh.NGlobal
				row = []string{iN(p), i64(n), i64(n / int64(p)), i64(dof), iN(res.Iterations)}
			}
		})
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig5AdaptationExtent reproduces Fig 5: per adaptation step, the number
// of elements coarsened, refined, added by BalanceTree, and unchanged
// (left plot), plus the distribution of elements over octree levels for
// selected steps (right plot).
func Fig5AdaptationExtent(scale Scale) (*Table, *Table) {
	p := 4
	base, maxLvl := uint8(3), uint8(6)
	target := int64(3000)
	steps := 8
	if scale == Full {
		base, maxLvl, target, steps = 4, 8, 30000, 16
	}
	left := &Table{
		Title:  "Fig 5 (left): elements coarsened/refined/balance-added/unchanged per adaptation step",
		Header: []string{"step", "coarsened", "refined", "balance-added", "unchanged", "total"},
		Notes:  []string{"paper: ~half of all elements coarsened or refined each step; total ~constant"},
	}
	right := &Table{
		Title:  "Fig 5 (right): elements per octree level at selected steps",
		Header: []string{"step", "level:count ..."},
		Notes:  []string{"paper: meshes span ~10 levels by step 8"},
	}
	var mu sync.Mutex
	sim.Run(p, func(r *sim.Rank) {
		s := newTransportSim(r, base, base-1, maxLvl, target)
		for step := 1; step <= steps; step++ {
			s.step(6)
			res := s.adapt()
			if r.ID() == 0 {
				mu.Lock()
				left.Rows = append(left.Rows, []string{
					iN(step), i64(res.Coarsened), i64(res.Refined),
					i64(res.BalanceAdded), i64(res.Unchanged), i64(res.Elements)})
				if step == 1 || step == steps/2 || step == steps {
					lv := ""
					for l, c := range res.LevelCounts {
						if c > 0 {
							lv += fmt.Sprintf("%d:%d ", l, c)
						}
					}
					right.Rows = append(right.Rows, []string{iN(step), lv})
				}
				mu.Unlock()
			}
		}
	})
	return left, right
}

// Fig6StrongScaling reproduces Fig 6: fixed-size speedups for several
// problem sizes. Wall-clock is measured at small goroutine-rank counts;
// the calibrated Ranger model extrapolates the same runs to the paper's
// core counts.
func Fig6StrongScaling(scale Scale) *Table {
	sizes := []int64{2000, 8000}
	measureRanks := []int{1, 2, 4, 8}
	if scale == Full {
		sizes = []int64{8000, 64000}
		measureRanks = []int{1, 2, 4, 8, 16}
	}
	t := &Table{
		Title:  "Fig 6: fixed-size (strong) scaling speedups",
		Header: []string{"#cores", "speedup(small)", "speedup(large)", "ideal"},
		Notes: []string{
			"paper: 366x at 512 cores (small), 101x at 32768/256 (large)",
			"measured at 1..8 goroutine ranks; extrapolated with the calibrated Ranger model",
		},
	}
	fits := make([]perfmodel.Fit, len(sizes))
	for si, n := range sizes {
		var samples []perfmodel.Sample
		for _, p := range measureRanks {
			var elems int64
			wall := 0.0
			sim.Run(p, func(r *sim.Rank) {
				s := newTransportSim(r, 3, 2, 6, n)
				r.Barrier()
				t0 := time.Now()
				for c := 0; c < 2; c++ {
					s.step(4)
					s.adapt()
				}
				r.Barrier()
				ne := s.tree.NumGlobal() // collective
				if r.ID() == 0 {
					wall = time.Since(t0).Seconds()
					elems = ne
				}
			})
			samples = append(samples, perfmodel.Sample{N: elems, P: p, T: wall})
		}
		fits[si] = perfmodel.FitSamples(samples)
	}
	paperCores := []int{1, 16, 256, 2048, 8192, 32768, 65536}
	for _, p := range paperCores {
		row := []string{iN(p)}
		for si, n := range sizes {
			row = append(row, f2(fits[si].Speedup(n*64, 1, p)))
		}
		row = append(row, iN(p))
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Fig7WeakScalingBreakdown reproduces Fig 7: the percentage of total run
// time in each AMR component versus numerical time integration under weak
// scaling, plus the parallel efficiency curve.
func Fig7WeakScalingBreakdown(scale Scale) (*Table, *Table) {
	ranks := []int{1, 2, 4, 8}
	perRank := int64(600)
	if scale == Full {
		ranks = []int{1, 2, 4, 8, 16}
		perRank = 4000
	}
	keys := []string{"NewTree", "CoarsenRefine", "BalanceTree", "PartitionTree",
		"ExtractMesh", "InterpolateFields", "TransferFields", "MarkElements", "TimeIntegration"}
	breakdown := &Table{
		Title:  "Fig 7 (top): % of total runtime per component, weak scaling",
		Header: append([]string{"#cores"}, append(append([]string{}, keys...), "AMR total")...),
		Notes: []string{
			"paper: AMR total <= 11% at 62,464 cores; ExtractMesh the largest AMR cost",
		},
	}
	eff := &Table{
		Title:  "Fig 7 (bottom): weak-scaling parallel efficiency",
		Header: []string{"#cores", "efficiency", "source"},
		Notes: []string{
			"paper: >= 50% from 1 to 62,464 cores",
			"measured rows beyond the host's physical cores are depressed by CPU oversubscription (ranks are goroutines); the modeled rows carry the scaling statement",
		},
	}
	var samples []perfmodel.Sample
	for _, p := range ranks {
		times := map[string]float64{}
		var total float64
		var elems int64
		sim.Run(p, func(r *sim.Rank) {
			s := newTransportSim(r, 3, 2, 6, perRank*int64(p))
			r.Barrier()
			for c := 0; c < 2; c++ {
				s.step(6)
				s.adapt()
			}
			r.Barrier()
			ne := s.tree.NumGlobal() // collective
			if r.ID() == 0 {
				for k, v := range s.times {
					times[k] = *v
				}
				total = s.totalTime()
				elems = ne
			}
		})
		row := []string{iN(p)}
		amr := 0.0
		for _, k := range keys {
			frac := times[k] / total
			if k != "TimeIntegration" {
				amr += frac
			}
			row = append(row, pct(frac))
		}
		row = append(row, pct(amr))
		breakdown.Rows = append(breakdown.Rows, row)
		samples = append(samples, perfmodel.Sample{N: elems, P: p, T: total})
		eff.Rows = append(eff.Rows, []string{iN(p),
			f3(samples[0].T / total * float64(1)), "measured"})
	}
	fit := perfmodel.FitSamples(samples)
	for _, p := range []int{256, 4096, 16384, 62464} {
		eff.Rows = append(eff.Rows, []string{iN(p), f3(fit.Efficiency(perRank, p)), "modeled"})
	}
	return breakdown, eff
}

package experiments

import (
	"fmt"
	"math"
	"time"

	"rhea/internal/amg"
	"rhea/internal/dg"
	"rhea/internal/fem"
	"rhea/internal/forest"
	"rhea/internal/la"
	"rhea/internal/mesh"
	"rhea/internal/morton"
	"rhea/internal/octree"
	"rhea/internal/perfmodel"
	"rhea/internal/rhea"
	"rhea/internal/sim"
)

// Fig8MantleWeakScaling reproduces Fig 8: the per-time-step runtime
// breakdown of the full mantle convection code (AMR, explicit transport,
// MINRES, AMG setup/solve) under weak scaling. The Stokes solve dominates
// and the AMG components grow with core count while AMR stays negligible.
func Fig8MantleWeakScaling(scale Scale) *Table {
	ranks := []int{1, 2, 4}
	perRank := int64(250)
	if scale == Full {
		ranks = []int{1, 2, 4, 8}
		perRank = 1500
	}
	t := &Table{
		Title: "Fig 8: full mantle convection weak scaling, runtime per cycle (s)",
		Header: []string{"#cores", "#elem", "AMR", "TimeIntegration", "StokesSetup+Update",
			"MINRES+AMGSolve", "Stokes share"},
		Notes: []string{
			"paper: Stokes solve >95% of runtime; AMR negligible; AMG grows with cores",
		},
	}
	var lastAssemble, lastMinres float64
	var lastElems int64
	for _, p := range ranks {
		var row []string
		sim.Run(p, func(r *sim.Rank) {
			cfg := blobCfg(3, 6, perRank*int64(p))
			cfg.AdaptEvery = 4
			s := rhea.New(r, cfg)
			s.Times = rhea.Timings{} // discard setup costs
			s.RunCycle()
			n := s.Tree.NumGlobal() // collective
			if r.ID() == 0 {
				tt := s.Times
				stokes := tt.StokesBuild() + tt.MINRES
				total := tt.AMRTotal() + tt.SolveTotal()
				row = []string{iN(p), i64(n), f3(tt.AMRTotal()),
					f3(tt.TimeIntegrate), f3(tt.StokesBuild()), f3(tt.MINRES),
					pct(stokes / total)}
				lastAssemble, lastMinres = tt.StokesBuild(), tt.MINRES
				lastElems = n
			}
		})
		t.Rows = append(t.Rows, row)
	}
	// Modeled continuation: per-rank work held at the last measured run,
	// with the p-dependent AMG communication added from the machine model
	// (this is the growth the paper observes in the gray/yellow bars).
	base := perfmodel.AMGWork(lastElems/int64(ranks[len(ranks)-1]), 160, 200)
	for _, p := range []int{1024, 16384} {
		extra := perfmodel.Ranger.Time(commOnly(base), p)
		t.Rows = append(t.Rows, []string{iN(p), "(modeled)", "~", "~",
			f3(lastAssemble + 0.1*extra), f3(lastMinres + extra), "~"})
	}
	return t
}

// Fig9AMGPoissonVsLaplace reproduces Fig 9: total time for one AMG setup
// plus 160 V-cycles, comparing the variable-viscosity octree-FEM Poisson
// operator against the 7-point Laplacian on a regular grid.
func Fig9AMGPoissonVsLaplace(scale Scale) *Table {
	n1d := 16
	if scale == Full {
		n1d = 32
	}
	t := &Table{
		Title:  "Fig 9: AMG setup + 160 V-cycles, variable-viscosity octree FEM vs 7-point Laplace",
		Header: []string{"#cores", "FEM Poisson (s)", "7-pt Laplace (s)", "source"},
		Notes: []string{
			"paper: Laplace is cheaper but scales the same; both grow with core count",
		},
	}
	// Measured, serial per-rank hierarchies.
	var femTime, lapTime float64
	var femN int
	sim.Run(1, func(r *sim.Rank) {
		tr := octree.New(r, uint8(math.Round(math.Log2(float64(n1d)))))
		tr.Refine(func(o morton.Octant) bool { return o.X == 0 && o.Z == 0 })
		tr.Balance()
		m := mesh.Extract(tr)
		eta := make([]float64, len(m.Leaves))
		for ei, leaf := range m.Leaves {
			zn := float64(leaf.Z) / float64(morton.RootLen)
			eta[ei] = 1.0
			if zn > 0.77 {
				eta[ei] = 1e4
			}
		}
		bc := func(x [3]float64) (float64, bool) {
			if x[2] == 0 || x[2] == 1 {
				return 0, true
			}
			return 0, false
		}
		A, _, _ := fem.AssembleScalar(m, fem.UnitDomain,
			func(ei int, h [3]float64) [8][8]float64 { return fem.StiffnessBrick(h, eta[ei]) },
			nil, bc)
		csr := A.LocalCSR()
		femN = csr.N
		t0 := time.Now()
		h := amg.Setup(csr, amg.Options{})
		b := make([]float64, csr.N)
		x := make([]float64, csr.N)
		for i := range b {
			b[i] = float64(i % 5)
		}
		for c := 0; c < 160; c++ {
			h.Cycle(b, x)
		}
		femTime = time.Since(t0).Seconds()
	})
	lap := sevenPointLaplace(n1d)
	t0 := time.Now()
	h := amg.Setup(lap, amg.Options{})
	b := make([]float64, lap.N)
	x := make([]float64, lap.N)
	for i := range b {
		b[i] = float64(i % 5)
	}
	for c := 0; c < 160; c++ {
		h.Cycle(b, x)
	}
	lapTime = time.Since(t0).Seconds()
	t.Rows = append(t.Rows, []string{"1", f3(femTime), f3(lapTime), "measured"})

	// Modeled growth with core count (per-rank size held constant).
	for _, p := range []int{64, 1024, 16384} {
		wf := perfmodel.AMGWork(int64(femN), 160, 300)
		wl := perfmodel.AMGWork(int64(lap.N), 160, 120)
		t.Rows = append(t.Rows, []string{iN(p),
			f3(femTime + perfmodel.Ranger.Time(commOnly(wf), p)),
			f3(lapTime + perfmodel.Ranger.Time(commOnly(wl), p)), "modeled"})
	}
	return t
}

// commOnly strips compute from a ledger so only the p-dependent part is
// added to a measured serial time.
func commOnly(w perfmodel.RankWork) perfmodel.RankWork {
	w.Flops = 0
	return w
}

// sevenPointLaplace builds the regular-grid stencil operator of Fig 9.
func sevenPointLaplace(n int) *la.CSR {
	N := n * n * n
	id := func(i, j, k int) int { return i + n*(j+n*k) }
	c := &la.CSR{N: N, RowPtr: make([]int32, N+1)}
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				row := id(i, j, k)
				add := func(col int, v float64) {
					c.ColIdx = append(c.ColIdx, int32(col))
					c.Vals = append(c.Vals, v)
				}
				if i > 0 {
					add(id(i-1, j, k), -1)
				}
				if j > 0 {
					add(id(i, j-1, k), -1)
				}
				if k > 0 {
					add(id(i, j, k-1), -1)
				}
				add(row, 6)
				if i < n-1 {
					add(id(i+1, j, k), -1)
				}
				if j < n-1 {
					add(id(i, j+1, k), -1)
				}
				if k < n-1 {
					add(id(i, j, k+1), -1)
				}
				c.RowPtr[row+1] = int32(len(c.Vals))
			}
		}
	}
	return c
}

// Fig10AMRBreakdownTable reproduces Fig 10: per-function AMR timings of
// the full mantle code versus the solve time, with AMR under 1%.
func Fig10AMRBreakdownTable(scale Scale) *Table {
	ranks := []int{1, 2, 4}
	perRank := int64(250)
	if scale == Full {
		ranks = []int{1, 2, 4, 8, 16}
		perRank = 1200
	}
	t := &Table{
		Title: "Fig 10: AMR timing breakdown (seconds per adaptation step) vs solve time",
		Header: []string{"#cores", "NewTree", "solve", "Coars+Refine", "Balance",
			"Partition", "Extract", "Interp+Transfer", "MarkElem", "AMR/solve"},
		Notes: []string{"paper: AMR under 1% of solve time at every core count"},
	}
	for _, p := range ranks {
		var row []string
		sim.Run(p, func(r *sim.Rank) {
			cfg := blobCfg(3, 6, perRank*int64(p))
			cfg.AdaptEvery = 4
			s := rhea.New(r, cfg)
			newTree := s.Times.NewTree
			s.Times = rhea.Timings{}
			s.RunCycle()
			if r.ID() == 0 {
				tt := s.Times
				solve := tt.SolveTotal()
				amrT := tt.AMRTotal()
				row = []string{iN(p), f3(newTree), f3(solve), f3(tt.CoarsenRefine),
					f3(tt.BalanceTree), f3(tt.PartitionTree), f3(tt.ExtractMesh),
					f3(tt.InterpolateFld + tt.TransferFld), f3(tt.MarkElements),
					pct(amrT / solve)}
			}
		})
		t.Rows = append(t.Rows, row)
	}
	return t
}

// Sec6YieldingStats reproduces the §VI accounting: the yielding-viscosity
// mantle run, its element count across levels, and the reduction factor
// relative to uniform meshes at the finest levels.
func Sec6YieldingStats(scale Scale) *Table {
	base, maxLvl := uint8(3), uint8(7)
	target := int64(5000)
	cycles := 3
	if scale == Full {
		base, maxLvl, target, cycles = 4, 9, 60000, 4
	}
	t := &Table{
		Title:  "Sec VI: yielding-viscosity convection, AMR vs uniform element counts",
		Header: []string{"quantity", "value"},
		Notes: []string{
			"paper: 19.2M elements at 14 levels vs 34B uniform at level 13 (>1000x reduction), ~1.5 km finest",
		},
	}
	sim.Run(4, func(r *sim.Rank) {
		cfg := blobCfg(base, maxLvl, target)
		cfg.Dom = fem.Domain{Box: [3]float64{8, 4, 1}}
		cfg.Visc = rhea.YieldingLaw(1e3)
		cfg.Ra = 1e6
		cfg.Picard = 2
		cfg.AdaptEvery = 4
		cfg.InitialTemp = func(x [3]float64) float64 {
			T := 1 - x[2]
			// Sharp hot anomalies plus a cold downwelling sheet to drive
			// deep, localized refinement (the paper's yielding scenario).
			T += 0.2 * math.Exp(-((x[0]-2)*(x[0]-2)+(x[1]-2)*(x[1]-2)+(x[2]-0.25)*(x[2]-0.25))/0.01)
			T += 0.2 * math.Exp(-((x[0]-6)*(x[0]-6)+(x[1]-2)*(x[1]-2)+(x[2]-0.3)*(x[2]-0.3))/0.02)
			T -= 0.2 * math.Exp(-((x[0]-4)*(x[0]-4)/0.3 + (x[2]-0.9)*(x[2]-0.9)/0.003))
			return T
		}
		s := rhea.New(r, cfg)
		for c := 0; c < cycles; c++ {
			s.RunCycle()
		}
		n := s.Tree.NumGlobal()        // collective
		lo, hi := s.Tree.MinMaxLevel() // collective
		// Realized viscosity extremes (collective).
		etas := s.ElementViscosity()
		loEta, hiEta := math.Inf(1), math.Inf(-1)
		for _, e := range etas {
			loEta = math.Min(loEta, e)
			hiEta = math.Max(hiEta, e)
		}
		gLoEta := r.Allreduce(loEta, sim.OpMin)
		gHiEta := r.Allreduce(hiEta, sim.OpMax)
		if r.ID() == 0 {
			uniform := int64(1) << (3 * int64(hi))
			// Mantle depth 2900 km spans the unit z of the domain.
			resKm := 2900.0 / float64(uint32(1)<<hi)
			t.Rows = append(t.Rows,
				[]string{"elements (AMR)", i64(n)},
				[]string{"octree levels", fmt.Sprintf("%d..%d (%d levels)", lo, hi, hi-lo+1)},
				[]string{"uniform elements at finest level", i64(uniform)},
				[]string{"reduction factor", f2(float64(uniform) / float64(n))},
				[]string{"finest resolution", fmt.Sprintf("%.1f km", resKm)},
				[]string{"viscosity range",
					fmt.Sprintf("%.2e .. %.2e (%.0ex)", gLoEta, gHiEta, gHiEta/gLoEta)},
			)
		}
	})
	return t
}

// Fig12SphereAdvection reproduces Fig 12: DG advection of a front on the
// 24-tree cubed-sphere forest with dynamic adaptation and drastic
// repartitioning between steps.
func Fig12SphereAdvection(scale Scale) *Table {
	p := 4
	order := 3
	cyc := 4
	if scale == Full {
		order, cyc = 4, 8
	}
	t := &Table{
		Title:  "Fig 12: cubed-sphere DG advection with forest-of-octrees AMR",
		Header: []string{"cycle", "elements", "max|T|", "moved on repartition"},
		Notes: []string{
			"paper: 24-tree cubed sphere, mesh follows the front, partition changes drastically",
		},
	}
	conn := forest.CubedSphere(2)
	R := float64(morton.RootLen)
	vel := func(ff *forest.Forest, o forest.Octant) [3]float64 {
		return [3]float64{0.4 * R, 0.15 * R, 0}
	}
	sim.Run(p, func(r *sim.Rank) {
		f := forest.New(r, conn, 2)
		adv := dg.NewAdvection(f, order, vel, func(o forest.Octant, x [3]float64) float64 {
			if o.Tree != 0 {
				return 0
			}
			d2 := (x[0]-0.5*R)*(x[0]-0.5*R) + (x[1]-0.5*R)*(x[1]-0.5*R)
			return math.Exp(-d2 / (0.02 * R * R))
		})
		for c := 1; c <= cyc; c++ {
			dt := adv.StableDt(0.4)
			for s := 0; s < 5; s++ {
				adv.Step(dt)
			}
			n, moved := adv.AdaptOnce(0.1, 0.02, 4, vel)
			maxAbs := adv.MaxAbs() // collective
			if r.ID() == 0 {
				t.Rows = append(t.Rows, []string{iN(c), i64(n), f3(maxAbs), i64(moved)})
			}
		}
	})
	return t
}

// Sec7MatrixVsTensor reproduces the §VII kernel study: time per element
// for the matrix-based O(p^6) versus tensor-product O(p^4) derivative
// application across polynomial orders, locating the crossover.
func Sec7MatrixVsTensor(scale Scale) *Table {
	orders := []int{1, 2, 4, 6, 8}
	reps := 200
	if scale == Full {
		reps = 2000
	}
	t := &Table{
		Title: "Sec VII: matrix-based vs tensor-product element derivative kernels",
		Header: []string{"p", "tensor ns/elem", "matrix ns/elem", "tensor flops", "matrix flops",
			"tensor GF/s", "matrix GF/s", "faster"},
		Notes: []string{
			"paper (Ranger+GotoBLAS): crossover between p=2 and p=4; at p=6 tensor does 20x fewer flops and runs 2x faster",
			"paper sustained rates: 145 TF at 32K cores (p=8 matrix) = ~4.4 GF/s/core; the matrix kernel sustains the higher per-element rate here too",
		},
	}
	for _, p := range orders {
		k := dg.NewKernels(p)
		n3 := k.N * k.N * k.N
		u := make([]float64, n3)
		for i := range u {
			u[i] = math.Sin(float64(i))
		}
		out := make([]float64, n3)
		t0 := time.Now()
		for rep := 0; rep < reps; rep++ {
			for d := 0; d < 3; d++ {
				k.DerivTensor(u, out, d)
			}
		}
		tten := time.Since(t0).Seconds() / float64(reps) * 1e9
		t0 = time.Now()
		repsM := reps
		if p >= 6 {
			repsM = reps / 10
			if repsM == 0 {
				repsM = 1
			}
		}
		for rep := 0; rep < repsM; rep++ {
			for d := 0; d < 3; d++ {
				k.DerivMatrix(u, out, d)
			}
		}
		tmat := time.Since(t0).Seconds() / float64(repsM) * 1e9
		ft, fm := k.FlopsPerElement()
		faster := "tensor"
		if tmat < tten {
			faster = "matrix"
		}
		gfT := float64(ft) / tten // ns -> GF/s
		gfM := float64(fm) / tmat
		t.Rows = append(t.Rows, []string{iN(p), fmt.Sprintf("%.0f", tten),
			fmt.Sprintf("%.0f", tmat), i64(ft), i64(fm),
			f2(gfT), f2(gfM), faster})
	}
	return t
}

// Sec7DGWeakScaling reproduces the §VII DG scalability claim: parallel
// efficiency of adaptive DG advection under weak scaling.
func Sec7DGWeakScaling(scale Scale) *Table {
	ranks := []int{1, 2, 4}
	order := 4
	if scale == Full {
		ranks = []int{1, 2, 4, 8}
	}
	t := &Table{
		Title:  "Sec VII: DG advection weak scaling (adapting every cycle)",
		Header: []string{"#cores", "elements", "time (s)", "efficiency", "source"},
		Notes:  []string{"paper: p=4 at 90% parallel efficiency on 16,384 vs 64 cores"},
	}
	conn := forest.BrickConnectivity(2, 1, 1)
	R := float64(morton.RootLen)
	vel := func(ff *forest.Forest, o forest.Octant) [3]float64 {
		return [3]float64{0.5 * R, 0, 0}
	}
	var samples []perfmodel.Sample
	base := 0.0
	for _, p := range ranks {
		lvl := uint8(1)
		if p >= 2 {
			lvl = 2
		}
		var wall float64
		var elems int64
		sim.Run(p, func(r *sim.Rank) {
			f := forest.New(r, conn, lvl)
			adv := dg.NewAdvection(f, order, vel, func(o forest.Octant, x [3]float64) float64 {
				return math.Exp(-(x[0] - 0.3*R) * (x[0] - 0.3*R) / (0.01 * R * R))
			})
			r.Barrier()
			t0 := time.Now()
			dt := adv.StableDt(0.4)
			for s := 0; s < 10; s++ {
				adv.Step(dt)
			}
			adv.AdaptOnce(0.2, 0.02, lvl+1, vel)
			r.Barrier()
			ne := f.NumGlobal() // collective
			if r.ID() == 0 {
				wall = time.Since(t0).Seconds()
				elems = ne
			}
		})
		perElem := wall / float64(elems) * float64(p)
		if base == 0 {
			base = perElem
		}
		t.Rows = append(t.Rows, []string{iN(p), i64(elems), f3(wall), f3(base / perElem), "measured"})
		samples = append(samples, perfmodel.Sample{N: elems, P: p, T: wall})
	}
	fit := perfmodel.FitSamples(samples)
	g := samples[len(samples)-1].N / int64(ranks[len(ranks)-1])
	for _, p := range []int{64, 16384} {
		t.Rows = append(t.Rows, []string{iN(p), i64(g * int64(p)), "-", f3(fit.Efficiency(g, p)), "modeled"})
	}
	return t
}

package experiments

// The Bunge benchmark gallery: the community mantle-convection cases of
// Bunge, Richards & Baumgartner (layered viscosity, free-slip outer
// surface, Earth-like shell radii) from the internal/bench registry,
// run across rank counts. The registry pins the reference Nu/Vrms
// values; this figure reports them as the paper-style table and the
// committed BENCH_bunge.json record.

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"rhea/internal/bench"
	"rhea/internal/sim"
)

// BungeCase is one rank-count run of one registry case.
type BungeCase struct {
	Case     string  `json:"case"`
	Desc     string  `json:"desc"`
	Ranks    int     `json:"ranks"`
	Elements int64   `json:"elements"`
	Iters    int     `json:"minres_iters"`
	Nu       float64 `json:"nu"`
	Vrms     float64 `json:"vrms"`
	Wall     float64 `json:"wall_s"`
}

// FigBunge runs Bunge cases 1-4 free-slip-top on the cubed-sphere shell
// at 1, 2 and 4 ranks (plus 8 at -scale full) and tabulates the pinned
// diagnostics. The table prints Nu/Vrms at the precision at which the
// rank counts agree exactly; the JSON record keeps the full values.
func FigBunge(scale Scale) (*Table, []BungeCase) {
	ranks := []int{1, 2, 4}
	if scale == Full {
		ranks = []int{1, 2, 4, 8}
	}
	var cases []BungeCase
	for _, c := range bench.Cases() {
		if len(c.Name) < 5 || c.Name[:5] != "bunge" {
			continue
		}
		for _, p := range ranks {
			c, p := c, p
			var row BungeCase
			start := time.Now()
			sim.Run(p, func(r *sim.Rank) {
				res := bench.Run(r, c)
				if r.ID() == 0 {
					row = BungeCase{
						Case:     c.Name,
						Desc:     c.Desc,
						Ranks:    p,
						Elements: res.Elements,
						Iters:    res.Iters,
						Nu:       res.Nu,
						Vrms:     res.Vrms,
					}
				}
			})
			row.Wall = time.Since(start).Seconds()
			cases = append(cases, row)
		}
	}

	t := &Table{
		Title:  "Bunge benchmark gallery: free-slip top, layered viscosity, Earth-like shell",
		Header: []string{"case", "ranks", "elements", "minres", "Nu", "Vrms", "wall s"},
		Notes: []string{
			"rotated-frame free-slip outer surface, no-slip base; viscosity jump at 660 km",
			"Nu and Vrms agree across rank counts to reduction rounding (pinned in internal/bench)",
		},
	}
	for _, c := range cases {
		t.Rows = append(t.Rows, []string{
			c.Case,
			fmt.Sprintf("%d", c.Ranks),
			fmt.Sprintf("%d", c.Elements),
			fmt.Sprintf("%d", c.Iters),
			fmt.Sprintf("%.4f", c.Nu),
			fmt.Sprintf("%.4f", c.Vrms),
			fmt.Sprintf("%.2f", c.Wall),
		})
	}
	return t, cases
}

// BungeJSON is the committed benchmark record (BENCH_bunge.json).
type BungeJSON struct {
	Generated string      `json:"generated"`
	Cases     []BungeCase `json:"cases"`
}

// WriteBungeJSON writes the gallery record.
func WriteBungeJSON(path string, cases []BungeCase) error {
	rec := BungeJSON{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Cases:     cases,
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

package experiments

// The per-kernel throughput study behind the Taylor-Hood element
// kernels: at the element level, the O(k^6) dense Q2 reference apply
// against the O(k^4) tensor-product sum factorization (the speedup the
// method promises, and the regression gate BENCH_kernels.json pins);
// at the operator level, the full matrix-free coupled apply for the
// Q1-Q1 and Q2-Q1 pairs on the same mesh, in dofs per second.

import (
	"encoding/json"
	"math"
	"math/rand"
	"os"
	"time"

	"rhea/internal/fem"
	"rhea/internal/krylov"
	"rhea/internal/la"
	"rhea/internal/mesh"
	"rhea/internal/octree"
	"rhea/internal/sim"
	"rhea/internal/stokes"
)

// KernelCase is one measured kernel or operator apply.
type KernelCase struct {
	Kernel string `json:"kernel"` // "q2-naive", "q2-sumfactor", "op-q1", "op-q2"
	// Element-level cases: one element apply; operator-level cases: one
	// global matrix-free apply over Elements elements.
	Elements int64 `json:"elements"`
	Dofs     int64 `json:"dofs"`
	// SecondsPerApply is wall time of one apply (element or operator).
	SecondsPerApply float64 `json:"seconds_per_apply"`
	ElemPerS        float64 `json:"elem_per_s"`
	DofPerS         float64 `json:"dof_per_s"`
	// SpeedupVsNaive is the per-dof throughput ratio against the dense
	// Q2 reference kernel (element-level cases only).
	SpeedupVsNaive float64 `json:"speedup_vs_naive,omitempty"`
}

// benchElemKernel times fn over n applies and returns seconds per apply.
func benchElemKernel(n int, fn func()) float64 {
	fn() // warm
	t0 := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return time.Since(t0).Seconds() / float64(n)
}

// FigKernels measures the Q2 element-kernel sum-factorization speedup
// and the end-to-end matrix-free operator throughput of both element
// orders, returning the printable table and the JSON cases.
func FigKernels(scale Scale) (*Table, []KernelCase) {
	lvl := uint8(3)
	elemApplies := 20000
	opApplies := 20
	if scale == Full {
		lvl = 4
		elemApplies = 100000
		opApplies = 60
	}

	// Element level: one Q2 element, dense reference vs sum-factorized.
	h := [3]float64{0.25, 0.25, 0.25}
	naive := fem.NewQ2StokesKernels(h)
	sf := fem.NewSumFactorKernels(h)
	var scratch fem.SFScratch
	rng := rand.New(rand.NewSource(1))
	var xe, ye [108]float64
	for i := range xe {
		xe[i] = rng.NormFloat64()
	}
	tNaive := benchElemKernel(elemApplies, func() { naive.Apply(1.3, &xe, &ye) })
	tSF := benchElemKernel(elemApplies, func() { sf.Apply(1.3, &xe, &ye, &scratch) })

	cases := []KernelCase{
		{Kernel: "q2-naive", Elements: 1, Dofs: 108,
			SecondsPerApply: tNaive, ElemPerS: 1 / tNaive, DofPerS: 108 / tNaive,
			SpeedupVsNaive: 1},
		{Kernel: "q2-sumfactor", Elements: 1, Dofs: 108,
			SecondsPerApply: tSF, ElemPerS: 1 / tSF, DofPerS: 108 / tSF,
			SpeedupVsNaive: tNaive / tSF},
	}

	// Operator level: the full coupled matrix-free apply on one uniform
	// mesh, Q1-Q1 vs Q2-Q1 (each over its own dof layout).
	var opQ1, opQ2 KernelCase
	sim.Run(2, func(r *sim.Rank) {
		tr := octree.New(r, lvl)
		m := mesh.Extract(tr)
		dom := fem.UnitDomain
		eta := make([]float64, len(m.Leaves))
		for ei := range eta {
			eta[ei] = 1
		}
		bc := stokes.FreeSlip(dom.Box)
		ne := tr.NumGlobal() // collective

		time1 := func(s *stokes.Solver) float64 {
			x := la.NewVec(s.Layout)
			for i := range x.Data {
				x.Data[i] = math.Sin(1.3 * float64(s.Layout.Start()+int64(i)))
			}
			y := la.NewVec(s.Layout)
			s.Op.Apply(x, y) // warm plans and caches
			c := &krylov.Counted{Op: s.Op}
			r.Barrier()
			for k := 0; k < opApplies; k++ {
				c.Apply(x, y)
			}
			r.Barrier()
			return c.Seconds / float64(c.Applies)
		}

		s1 := stokes.Assemble(m, dom, eta, nil, bc, stokes.Options{MatrixFree: true})
		t1 := time1(s1)

		m.Q2 = mesh.ExtractQ2(tr, m)
		s2 := stokes.Setup(m, dom, bc, stokes.Options{
			MatrixFree: true, Precond: stokes.PrecondGMG, Order: 2,
		}).Update(eta, nil)
		t2 := time1(s2)

		if r.ID() == 0 {
			d1 := int64(4 * m.NGlobal)
			d2 := int64(4 * m.Q2.NGlobal)
			opQ1 = KernelCase{Kernel: "op-q1", Elements: ne, Dofs: d1,
				SecondsPerApply: t1, ElemPerS: float64(ne) / t1, DofPerS: float64(d1) / t1}
			opQ2 = KernelCase{Kernel: "op-q2", Elements: ne, Dofs: d2,
				SecondsPerApply: t2, ElemPerS: float64(ne) / t2, DofPerS: float64(d2) / t2}
		}
	})
	cases = append(cases, opQ1, opQ2)

	t := &Table{
		Title: "Q2 kernel and operator throughput (sum factorization vs dense reference)",
		Header: []string{"kernel", "#elem", "#dof", "apply us",
			"Melem/s", "Mdof/s", "speedup vs naive"},
		Notes: []string{
			"element rows: one Q2 element apply, single core; operator rows: full matrix-free coupled apply, 2 ranks",
			"speedup is per-dof throughput against the dense O(k^6) Q2 reference kernel",
		},
	}
	for _, c := range cases {
		sp := "-"
		if c.SpeedupVsNaive > 0 {
			sp = f2(c.SpeedupVsNaive)
		}
		t.Rows = append(t.Rows, []string{
			c.Kernel, i64(c.Elements), i64(c.Dofs),
			f3(c.SecondsPerApply * 1e6),
			f3(c.ElemPerS / 1e6), f3(c.DofPerS / 1e6), sp})
	}
	return t, cases
}

// KernelsJSON is the BENCH_kernels.json schema.
type KernelsJSON struct {
	Generated string       `json:"generated"`
	Cases     []KernelCase `json:"cases"`
}

// WriteKernelsJSON writes the kernel throughput record CI regenerates.
func WriteKernelsJSON(path string, cases []KernelCase) error {
	rec := KernelsJSON{
		Generated: time.Now().UTC().Format(time.RFC3339),
		Cases:     cases,
	}
	buf, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// Package experiments regenerates every table and figure of the paper's
// evaluation (Figs 2, 5–10, 12, the §VI yielding statistics and the §VII
// kernel study), at laptop scale, printing the same rows/series the paper
// reports. Each experiment is shared between cmd/alpsbench (human-driven)
// and the root bench_test.go (go test -bench).
//
// Numbers labeled "measured" come from actually executed runs (ranks are
// goroutines); numbers labeled "modeled" are extrapolations through the
// calibrated Ranger performance model (internal/perfmodel). EXPERIMENTS.md
// records both against the paper's values.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is one printable experiment result.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var b strings.Builder
		for i, c := range cells {
			if i < len(widths) {
				fmt.Fprintf(&b, "%-*s  ", widths[i], c)
			} else {
				b.WriteString(c + "  ")
			}
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	line(t.Header)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func i64(v int64) string   { return fmt.Sprintf("%d", v) }
func iN(v int) string      { return fmt.Sprintf("%d", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

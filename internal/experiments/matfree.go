package experiments

import (
	"fmt"
	"math"
	"time"

	"rhea/internal/fem"
	"rhea/internal/krylov"
	"rhea/internal/la"
	"rhea/internal/mesh"
	"rhea/internal/morton"
	"rhea/internal/octree"
	"rhea/internal/sim"
	"rhea/internal/stokes"
)

// matfreeCase holds one refinement level's measurements on rank 0.
type matfreeCase struct {
	elems, dof            int64
	asmApply, mfApply     float64 // seconds per operator apply
	asmSetup, mfSetup     float64 // Assemble wall time (incl. preconditioner)
	asmSolve, mfSolve     float64 // MINRES wall time
	asmIters, mfIters     int
	workers               int
	asmConverg, mfConverg bool
}

// FigMatFreeThroughput compares the assembled-CSR and the matrix-free
// coupled Stokes operator (package matfree) across refinement levels:
// setup cost, per-apply wall time, and end-to-end MINRES solve time on
// the identical adapted mesh, viscosity field and preconditioner. The
// matrix-free path additionally parallelizes its element loop over
// in-rank cores (workers column).
func FigMatFreeThroughput(scale Scale) *Table {
	p := 2
	levels := []uint8{2, 3, 4}
	applies := 40
	if scale == Full {
		levels = []uint8{3, 4, 5}
		applies = 80
	}
	t := &Table{
		Title: "Matrix-free vs assembled Stokes operator throughput",
		Header: []string{"level", "#elem", "#dof", "workers",
			"asm apply ms", "mf apply ms", "apply speedup",
			"asm setup s", "mf setup s", "asm solve s", "mf solve s", "iters asm/mf"},
		Notes: []string{
			"identical mesh (adaptive, hanging nodes), viscosity, rhs and AMG preconditioner in both modes",
			"mf = fused per-element kernel apply, ghost gather/scatter-add, in-rank worker pool",
		},
	}
	for _, lvl := range levels {
		var c matfreeCase
		sim.Run(p, func(r *sim.Rank) {
			tr := octree.New(r, lvl)
			tr.Refine(func(o morton.Octant) bool { return o.X == 0 && o.Y == 0 && o.Z == 0 })
			tr.Balance()
			tr.Partition()
			m := mesh.Extract(tr)
			dom := fem.UnitDomain
			eta := make([]float64, len(m.Leaves))
			for ei, leaf := range m.Leaves {
				if float64(leaf.Z)/float64(morton.RootLen) > 0.5 {
					eta[ei] = 100
				} else {
					eta[ei] = 1
				}
			}
			force := make([][8][3]float64, len(m.Leaves))
			for ei := range force {
				x := dom.ElemCenter(m.Leaves[ei])
				for cc := 0; cc < 8; cc++ {
					force[ei][cc] = [3]float64{0, 0, math.Sin(math.Pi * x[0])}
				}
			}
			bc := stokes.FreeSlip(dom.Box)

			t0 := time.Now()
			asm := stokes.Assemble(m, dom, eta, force, bc, stokes.Options{})
			asmSetup := time.Since(t0).Seconds()
			t0 = time.Now()
			mf := stokes.Assemble(m, dom, eta, force, bc, stokes.Options{MatrixFree: true})
			mfSetup := time.Since(t0).Seconds()

			// Timed applies on a shared randomized vector (collective).
			x := la.NewVec(asm.Layout)
			for i := range x.Data {
				x.Data[i] = math.Sin(1.3 * float64(asm.Layout.Start()+int64(i)))
			}
			y := la.NewVec(asm.Layout)
			time1 := func(op krylov.Operator) float64 {
				op.Apply(x, y) // warm caches and exchange plans
				c := &krylov.Counted{Op: op}
				r.Barrier()
				for k := 0; k < applies; k++ {
					c.Apply(x, y)
				}
				r.Barrier()
				return c.Seconds / float64(c.Applies)
			}
			asmApply := time1(asm.Op)
			mfApply := time1(mf.Op)

			solve1 := func(s *stokes.System) (float64, krylov.Result) {
				x0 := la.NewVec(s.Layout)
				r.Barrier()
				t0 := time.Now()
				res := s.Solve(x0, 1e-8, 2000)
				r.Barrier()
				return time.Since(t0).Seconds(), res
			}
			asmSolve, ra := solve1(asm)
			mfSolve, rm := solve1(mf)

			ne := tr.NumGlobal() // collective
			if r.ID() == 0 {
				c = matfreeCase{
					elems: ne, dof: 4 * m.NGlobal,
					asmApply: asmApply, mfApply: mfApply,
					asmSetup: asmSetup, mfSetup: mfSetup,
					asmSolve: asmSolve, mfSolve: mfSolve,
					asmIters: ra.Iterations, mfIters: rm.Iterations,
					workers:    mf.MF.Workers(),
					asmConverg: ra.Converged, mfConverg: rm.Converged,
				}
			}
		})
		iters := fmt.Sprintf("%d/%d", c.asmIters, c.mfIters)
		if !c.asmConverg || !c.mfConverg {
			iters += "!"
		}
		t.Rows = append(t.Rows, []string{
			iN(int(lvl)), i64(c.elems), i64(c.dof), iN(c.workers),
			f3(c.asmApply * 1e3), f3(c.mfApply * 1e3), f2(c.asmApply / c.mfApply),
			f3(c.asmSetup), f3(c.mfSetup), f3(c.asmSolve), f3(c.mfSolve),
			iters})
	}
	return t
}

package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"rhea/internal/sim"
)

// TestShellSolve256Short is the -short CI smoke for the scalability
// acceptance criteria: a shell convection Stokes solve plus ghost
// exchange at 256 simulated ranks completes inside the short-test
// budget, per-rank user messages per ghost exchange are O(neighbors)
// (vs the old dense O(P)), and collective rounds per rank stay within
// ceil(log2 P) + O(1) per collective.
func TestShellSolve256Short(t *testing.T) {
	const p = 256
	c := runScalingCase("strong", p, scalingShellConfig(1536, 2, 1e-5))
	if c.Elements != 1536 || c.Nodes == 0 {
		t.Fatalf("unexpected mesh: %+v", c)
	}
	if c.MinresIters <= 0 {
		t.Fatalf("solve did not run: %+v", c)
	}
	// One ghost-exchange Gather costs each rank at most its neighbor
	// count in user messages — far below the dense P-1.
	if c.MaxGhostMsgs > c.MaxGhostNeighbors {
		t.Errorf("ghost exchange sent %d msgs on some rank, more than its %d neighbors",
			c.MaxGhostMsgs, c.MaxGhostNeighbors)
	}
	if c.MaxGhostMsgs >= p-1 {
		t.Errorf("ghost exchange sent %d msgs per rank: no better than dense P-1 = %d",
			c.MaxGhostMsgs, p-1)
	}
	if c.MaxGhostNeighbors >= p/4 {
		t.Errorf("ghost neighborhood %d is not sparse at P=%d", c.MaxGhostNeighbors, p)
	}
	// One scalar Allreduce costs exactly ceil(log2 P) rounds per rank.
	if c.AllreduceRounds > sim.CeilLog2(p) {
		t.Errorf("Allreduce took %d rounds per rank, want <= %d", c.AllreduceRounds, sim.CeilLog2(p))
	}
	// Whole-solve collective rounds: at most 2*ceil(log2 P) + O(1) per
	// collective op (vector reductions pay two tree traversals).
	if lim := (2*sim.CeilLog2(p) + 2) * c.Collectives; c.MaxCollRounds > lim {
		t.Errorf("solve spent %d collective rounds on some rank over %d collectives (limit %d)",
			c.MaxCollRounds, c.Collectives, lim)
	}
}

// TestFigScaling runs the full scaling figure and sanity-checks the
// table, the per-case message bounds, and the JSON record.
func TestFigScaling(t *testing.T) {
	skipIfShort(t)
	tb, cases, fit := FigScaling(Small)
	rs := rows(t, tb)
	if len(rs) != 3 || len(cases) != 3 {
		t.Fatalf("want 3 strong cases, got %d rows / %d cases", len(rs), len(cases))
	}
	for _, c := range cases {
		if c.Series != "strong" || c.Elements != 1536 {
			t.Errorf("unexpected case: %+v", c)
		}
		if c.MaxGhostMsgs > c.MaxGhostNeighbors || c.MaxGhostNeighbors >= c.Ranks-1 {
			t.Errorf("P=%d: ghost exchange not sparse: %d msgs, %d neighbors",
				c.Ranks, c.MaxGhostMsgs, c.MaxGhostNeighbors)
		}
		if c.AllreduceRounds != sim.CeilLog2(c.Ranks) {
			t.Errorf("P=%d: Allreduce rounds %d, want %d", c.Ranks, c.AllreduceRounds, sim.CeilLog2(c.Ranks))
		}
	}
	// Iteration counts must stay roughly flat across rank counts (the
	// physics is identical; only the block-Jacobi granularity changes).
	if cases[2].MinresIters > 2*cases[0].MinresIters {
		t.Errorf("MINRES iterations blow up with P: %d at 16 vs %d at 256",
			cases[0].MinresIters, cases[2].MinresIters)
	}
	// The refit runs against the modeled straggler times, so its
	// predictions must track them (not the oversubscribed wall clock).
	for _, c := range cases {
		if c.ModelS <= 0 || c.FitS <= 0 {
			t.Fatalf("P=%d: non-positive model/fit times: %+v", c.Ranks, c)
		}
		if c.FitS > 3*c.ModelS || c.ModelS > 3*c.FitS {
			t.Errorf("P=%d: fit %.4fs does not track modeled %.4fs", c.Ranks, c.FitS, c.ModelS)
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_scaling.json")
	if err := WriteScalingJSON(path, cases, fit); err != nil {
		t.Fatalf("WriteScalingJSON: %v", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read json: %v", err)
	}
	var rec ScalingJSON
	if err := json.Unmarshal(buf, &rec); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(rec.Cases) != 3 || rec.Generated == "" {
		t.Errorf("json record incomplete: %+v", rec)
	}
}

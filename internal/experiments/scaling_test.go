package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"rhea/internal/sim"
)

// TestShellSolve256Short is the -short CI smoke for the scalability
// acceptance criteria: a GMG-preconditioned shell convection Stokes
// solve plus ghost exchange at 256 simulated ranks completes inside the
// short-test budget, per-rank user messages per ghost exchange are
// O(neighbors) (vs the old dense O(P)), and collective rounds per rank
// stay within ceil(log2 P) + O(1) per collective.
func TestShellSolve256Short(t *testing.T) {
	const p = 256
	c := runScalingCase("strong", p, scalingShellConfig(1536, 2, 1e-5))
	if c.Elements != 1536 || c.Nodes == 0 {
		t.Fatalf("unexpected mesh: %+v", c)
	}
	if c.MinresIters <= 0 {
		t.Fatalf("solve did not run: %+v", c)
	}
	// The solve must be preconditioned by the real multigrid hierarchy,
	// not a per-rank fallback, and its coarse levels must have
	// agglomerated onto a strict rank subset.
	if c.Precond != "gmg" || c.Degenerate {
		t.Fatalf("want a non-degenerate gmg preconditioner, got %+v", c)
	}
	if c.GMGCoarseRanks < 1 || c.GMGCoarseRanks >= p {
		t.Errorf("coarse solve on %d ranks, want in [1, %d)", c.GMGCoarseRanks, p)
	}
	if c.GMGLevels < 2 {
		t.Errorf("GMG hierarchy has %d levels, want >= 2", c.GMGLevels)
	}
	// One ghost-exchange Gather costs each rank at most its neighbor
	// count in user messages — far below the dense P-1.
	if c.MaxGhostMsgs > c.MaxGhostNeighbors {
		t.Errorf("ghost exchange sent %d msgs on some rank, more than its %d neighbors",
			c.MaxGhostMsgs, c.MaxGhostNeighbors)
	}
	if c.MaxGhostMsgs >= p-1 {
		t.Errorf("ghost exchange sent %d msgs per rank: no better than dense P-1 = %d",
			c.MaxGhostMsgs, p-1)
	}
	if c.MaxGhostNeighbors >= p/4 {
		t.Errorf("ghost neighborhood %d is not sparse at P=%d", c.MaxGhostNeighbors, p)
	}
	// One scalar Allreduce costs exactly ceil(log2 P) rounds per rank.
	if c.AllreduceRounds > sim.CeilLog2(p) {
		t.Errorf("Allreduce took %d rounds per rank, want <= %d", c.AllreduceRounds, sim.CeilLog2(p))
	}
	// Whole-solve collective rounds: at most 2*ceil(log2 P) + O(1) per
	// collective op (vector reductions pay two tree traversals).
	if lim := (2*sim.CeilLog2(p) + 2) * c.Collectives; c.MaxCollRounds > lim {
		t.Errorf("solve spent %d collective rounds on some rank over %d collectives (limit %d)",
			c.MaxCollRounds, c.Collectives, lim)
	}
}

// TestWeakScalingGMG256Short is the -short CI smoke for the weak series:
// a fixed 6-elements-per-rank shell solve at P=256, GMG-preconditioned
// with the coarse levels agglomerated onto a rank subset, converging in
// a bounded iteration count.
func TestWeakScalingGMG256Short(t *testing.T) {
	const p = 256
	const per = 6 // 6*256 = 1536 = the base shell, the floor of the weak ladder
	target := int64(per * p)
	c := runScalingCase("weak", p, scalingShellConfig(target, weakMaxLevel(target), 1e-5))
	if c.Elements != target {
		t.Fatalf("weak case has %d elements, want %d", c.Elements, target)
	}
	if c.Precond != "gmg" || c.Degenerate {
		t.Fatalf("want a non-degenerate gmg preconditioner, got %+v", c)
	}
	if c.GMGCoarseRanks < 1 || c.GMGCoarseRanks >= p {
		t.Errorf("coarse solve on %d ranks, want in [1, %d)", c.GMGCoarseRanks, p)
	}
	if c.MinresIters <= 0 || c.MinresIters >= 3000 {
		t.Errorf("MINRES took %d iterations: not a converged bounded solve", c.MinresIters)
	}
}

// TestFigScaling runs the full scaling figure and sanity-checks the
// table, the per-case message bounds, the GMG acceptance criterion
// (P-independent iteration counts), and the JSON record.
func TestFigScaling(t *testing.T) {
	skipIfShort(t)
	tb, cases, fit := FigScaling(Small)
	rs := rows(t, tb)
	// Small scale: strong {16, 64, 256} plus weak {64, 256}.
	if len(rs) != 5 || len(cases) != 5 {
		t.Fatalf("want 3 strong + 2 weak cases, got %d rows / %d cases", len(rs), len(cases))
	}
	var strong, weak []ScalingCase
	for _, c := range cases {
		t.Logf("%s P=%d N=%d it=%d wall=%.3fs total=%.3fs model=%.3fs fit=%.3fs gmgLv=%d coarseP=%d",
			c.Series, c.Ranks, c.Elements, c.MinresIters, c.WallS, c.TotalS, c.ModelS, c.FitS,
			c.GMGLevels, c.GMGCoarseRanks)
	}
	for _, c := range cases {
		switch c.Series {
		case "strong":
			strong = append(strong, c)
		case "weak":
			weak = append(weak, c)
		default:
			t.Fatalf("unexpected series: %+v", c)
		}
	}
	if len(strong) != 3 || len(weak) != 2 {
		t.Fatalf("want 3 strong / 2 weak, got %d / %d", len(strong), len(weak))
	}
	for _, c := range strong {
		if c.Elements != 1536 {
			t.Errorf("strong case not on the fixed mesh: %+v", c)
		}
	}
	// TargetElems steers adaptation; the achieved count lands near it,
	// not exactly on it.
	if tgt := int64(24 * 256); weak[1].Ranks != 256 || weak[1].Elements < tgt/2 || weak[1].Elements > 2*tgt {
		t.Errorf("weak ladder wrong: %+v", weak[1])
	}
	for _, c := range cases {
		if c.Precond != "gmg" {
			t.Errorf("P=%d %s: preconditioner is %q, want gmg", c.Ranks, c.Series, c.Precond)
		}
		if c.Degenerate {
			t.Errorf("P=%d %s: GMG hierarchy degenerated", c.Ranks, c.Series)
		}
		if c.Ranks > 16 && (c.GMGCoarseRanks < 1 || c.GMGCoarseRanks >= c.Ranks) {
			t.Errorf("P=%d %s: coarse solve on %d ranks, want a strict subset",
				c.Ranks, c.Series, c.GMGCoarseRanks)
		}
		if c.MaxGhostMsgs > c.MaxGhostNeighbors || c.MaxGhostNeighbors >= c.Ranks-1 {
			t.Errorf("P=%d: ghost exchange not sparse: %d msgs, %d neighbors",
				c.Ranks, c.MaxGhostMsgs, c.MaxGhostNeighbors)
		}
		if c.AllreduceRounds != sim.CeilLog2(c.Ranks) {
			t.Errorf("P=%d: Allreduce rounds %d, want %d", c.Ranks, c.AllreduceRounds, sim.CeilLog2(c.Ranks))
		}
	}
	// Acceptance: GMG iteration counts are level-independent — the
	// strong P=256 solve converges within ±10% of the P=16 count.
	it16, it256 := strong[0].MinresIters, strong[2].MinresIters
	d := it256 - it16
	if d < 0 {
		d = -d
	}
	if 10*d > it16+9 { // |d| <= ceil(it16/10)
		t.Errorf("MINRES iterations not P-independent: %d at P=16 vs %d at P=256", it16, it256)
	}
	// The refit runs against the measured wall times, so its predictions
	// must track them (the old code fit the model's own predictions and
	// fit_s just echoed model_s).
	for _, c := range cases {
		if c.WallS <= 0 || c.FitS <= 0 {
			t.Fatalf("P=%d: non-positive wall/fit times: %+v", c.Ranks, c)
		}
		if c.FitS > 15*c.WallS || c.WallS > 15*c.FitS {
			t.Errorf("P=%d %s: fit %.4fs does not track measured %.4fs",
				c.Ranks, c.Series, c.FitS, c.WallS)
		}
	}
	path := filepath.Join(t.TempDir(), "BENCH_scaling.json")
	if err := WriteScalingJSON(path, cases, fit); err != nil {
		t.Fatalf("WriteScalingJSON: %v", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read json: %v", err)
	}
	var rec ScalingJSON
	if err := json.Unmarshal(buf, &rec); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if len(rec.Cases) != 5 || rec.Generated == "" {
		t.Errorf("json record incomplete: %+v", rec)
	}
}

package gmg

import (
	"math"
	"testing"

	"rhea/internal/fem"
	"rhea/internal/krylov"
	"rhea/internal/la"
	"rhea/internal/mesh"
	"rhea/internal/morton"
	"rhea/internal/octree"
	"rhea/internal/sim"
)

// buildMesh makes an adaptively refined, balanced, partitioned test mesh.
func buildMesh(r *sim.Rank, level uint8, adapt bool) *mesh.Mesh {
	tr := octree.New(r, level)
	if adapt {
		tr.Refine(func(o morton.Octant) bool { return o.X == 0 && o.Y == 0 && o.Z == 0 })
		tr.Balance()
		tr.Partition()
	}
	return mesh.Extract(tr)
}

// layeredViscosity is a 100:1 two-layer field keyed on element position.
func layeredViscosity(m *mesh.Mesh) []float64 {
	out := make([]float64, len(m.Leaves))
	for ei, leaf := range m.Leaves {
		if float64(leaf.Z)/float64(morton.RootLen) > 0.5 {
			out[ei] = 100
		} else {
			out[ei] = 1
		}
	}
	return out
}

func zeroBC(x [3]float64) (float64, bool) {
	for a := 0; a < 3; a++ {
		if x[a] == 0 || x[a] == 1 {
			return 0, true
		}
	}
	return 0, false
}

// The hierarchy must coarsen geometrically down to the configured coarse
// size, with element counts decaying and the coarsest level small enough
// that its assembled CSR is negligible next to the fine mesh.
func TestHierarchyShape(t *testing.T) {
	sim.Run(2, func(r *sim.Rank) {
		m := buildMesh(r, 3, true)
		h := New(m, fem.UnitDomain, layeredViscosity(m), Options{})
		elems := h.LevelElems()
		if r.ID() == 0 {
			t.Logf("levels %d elems %v coarse nodes %d", h.NumLevels(), elems, h.CoarseNodes())
		}
		if h.NumLevels() < 3 {
			t.Errorf("expected >= 3 levels from a level-3+1 tree, got %d", h.NumLevels())
		}
		for l := 1; l < len(elems); l++ {
			if elems[l] >= elems[l-1] {
				t.Errorf("level %d not coarser: %v", l, elems)
			}
		}
		if elems[len(elems)-1] > 64 {
			t.Errorf("coarsest level too large: %v", elems)
		}
	})
}

// The level operator must match the assembled constrained scalar matrix
// (fem.AssembleScalar) to rounding, and the matrix-free diagonal must
// match the assembled diagonal exactly — on a hanging-node mesh across
// ranks.
func TestLevelOperatorMatchesAssembled(t *testing.T) {
	for _, p := range []int{1, 3} {
		sim.Run(p, func(r *sim.Rank) {
			m := buildMesh(r, 2, true)
			dom := fem.UnitDomain
			eta := layeredViscosity(m)
			h := New(m, dom, eta, Options{})
			bcd := fem.GatherBC(m, dom, zeroBC)
			op := newLevelOp(h.levels[0], bcd)

			stiff := func(ei int, hh [3]float64) [8][8]float64 {
				return fem.StiffnessBrick(hh, eta[ei])
			}
			A, _, _ := fem.AssembleScalar(m, dom, stiff, nil, zeroBC)

			x := la.NewVec(m.Layout())
			for i := range x.Data {
				x.Data[i] = math.Sin(0.9 * float64(m.Offset+int64(i)))
			}
			y1, y2 := la.NewVec(m.Layout()), la.NewVec(m.Layout())
			op.Apply(x, y1)
			A.Apply(x, y2)
			for i := range y1.Data {
				if d := math.Abs(y1.Data[i] - y2.Data[i]); d > 1e-10 {
					t.Fatalf("p=%d: apply mismatch at %d: %v vs %v", p, i, y1.Data[i], y2.Data[i])
				}
			}

			diag := fem.AssembleScalarDiag(m, dom, stiff, bcd)
			ad := A.Diag()
			for i := range diag.Data {
				if d := math.Abs(diag.Data[i] - ad.Data[i]); d > 1e-10 {
					t.Fatalf("p=%d: diag mismatch at %d: %v vs %v", p, i, diag.Data[i], ad.Data[i])
				}
			}
		})
	}
}

// The V-cycle preconditioner must be symmetric (<Mx,y> == <x,My>) — the
// property MINRES needs — and accelerate CG far beyond Jacobi on a
// variable-viscosity Poisson problem.
func TestVcyclePreconditionsCG(t *testing.T) {
	sim.Run(2, func(r *sim.Rank) {
		m := buildMesh(r, 3, true)
		dom := fem.UnitDomain
		eta := layeredViscosity(m)
		h := New(m, dom, eta, Options{})
		M := h.Precond(zeroBC)
		bcd := fem.GatherBC(m, dom, zeroBC)
		op := newLevelOp(h.levels[0], bcd)

		// Symmetry.
		x, y := la.NewVec(m.Layout()), la.NewVec(m.Layout())
		for i := range x.Data {
			g := float64(m.Offset + int64(i))
			x.Data[i] = math.Sin(g)
			y.Data[i] = math.Cos(2 * g)
		}
		mx, my := la.NewVec(m.Layout()), la.NewVec(m.Layout())
		M.Apply(x, mx)
		M.Apply(y, my)
		d1, d2 := mx.Dot(y), my.Dot(x)
		if math.Abs(d1-d2)/math.Max(math.Abs(d1), 1e-30) > 1e-10 {
			t.Errorf("V-cycle not symmetric: %v vs %v", d1, d2)
		}

		// CG convergence with V-cycle vs Jacobi.
		b := la.NewVec(m.Layout())
		for i, pos := range m.OwnedPos {
			c := dom.Coord(pos)
			b.Data[i] = math.Sin(math.Pi * c[0] * c[1] * c[2])
			if _, is := zeroBC(c); is {
				b.Data[i] = 0
			}
		}
		x0 := la.NewVec(m.Layout())
		res := krylov.CG(op, M, b, x0, 1e-8, 100)
		if !res.Converged {
			t.Fatalf("CG with GMG V-cycle did not converge: %v", res.Residual)
		}
		x0.Zero()
		jac := krylov.DiagOp(mustDinv(h, bcd, m, dom, eta))
		resJ := krylov.CG(op, jac, b, x0, 1e-8, 2000)
		if r.ID() == 0 {
			t.Logf("CG iterations: gmg=%d jacobi=%d", res.Iterations, resJ.Iterations)
		}
		if res.Iterations*3 > resJ.Iterations {
			t.Errorf("V-cycle not accelerating: gmg %d vs jacobi %d", res.Iterations, resJ.Iterations)
		}
	})
}

func mustDinv(h *Hierarchy, bcd *fem.BCData, m *mesh.Mesh, dom fem.Domain, eta []float64) *la.Vec {
	diag := fem.AssembleScalarDiag(m, dom, func(ei int, hh [3]float64) [8][8]float64 {
		return fem.StiffnessBrick(hh, eta[ei])
	}, bcd)
	dinv := la.NewVec(diag.Layout)
	for i, v := range diag.Data {
		if v != 0 {
			dinv.Data[i] = 1 / v
		} else {
			dinv.Data[i] = 1
		}
	}
	return dinv
}

// BenchmarkGMGVcycle times one V-cycle application of the component
// preconditioner on a single rank (the per-iteration preconditioner cost
// of the matrix-free Stokes solve).
func BenchmarkGMGVcycle(bench *testing.B) {
	for _, lvl := range []uint8{3, 4} {
		bench.Run(map[uint8]string{3: "level3", 4: "level4"}[lvl], func(bench *testing.B) {
			sim.Run(1, func(r *sim.Rank) {
				m := buildMesh(r, lvl, true)
				h := New(m, fem.UnitDomain, layeredViscosity(m), Options{})
				M := h.Precond(zeroBC)
				x, y := la.NewVec(m.Layout()), la.NewVec(m.Layout())
				for i := range x.Data {
					x.Data[i] = math.Sin(float64(i))
				}
				M.Apply(x, y) // warm up
				bench.ResetTimer()
				for i := 0; i < bench.N; i++ {
					M.Apply(x, y)
				}
				bench.StopTimer()
				bench.ReportMetric(float64(4*m.NGlobal), "dofs")
			})
		})
	}
}

package gmg

// Rank-subset agglomeration tests: the hierarchy must keep coarsening
// past the point where a fixed partition stalls (by repartitioning
// levels onto fewer ranks), the V-cycle across repartition gaps must
// stay symmetric (the gap transfers are transposes), and a Rebuild on
// an agglomerated hierarchy must be indistinguishable from a freshly
// built one.

import (
	"math"
	"testing"

	"rhea/internal/fem"
	"rhea/internal/la"
	"rhea/internal/mesh"
	"rhea/internal/octree"
	"rhea/internal/sim"
)

func agglomTestBC(x [3]float64) (float64, bool) {
	return 0, x[2] < 1e-12 // Dirichlet bottom face
}

// agglomTestEta is a partition-independent smooth viscosity field with a
// couple of decades of contrast.
func agglomTestEta(m *mesh.Mesh, seed float64) []float64 {
	dom := fem.UnitDomain
	out := make([]float64, len(m.Leaves))
	for ei, leaf := range m.Leaves {
		c := dom.ElemCenter(leaf)
		out[ei] = math.Exp(2 * math.Sin(7*c[0]+5*c[1]+3*c[2]+seed))
	}
	return out
}

// TestHierarchyAgglomerates: at 16 ranks on a 512-element uniform box,
// a fixed partition would stall at 64 elements (4 per rank, every
// family split across ranks at the next merge); agglomeration must
// carry the hierarchy down to CoarseElems on a shrinking rank subset,
// with the global accessors answering identically on member and idle
// ranks and the V-cycle staying symmetric across the gap.
func TestHierarchyAgglomerates(t *testing.T) {
	const p = 16
	sim.Run(p, func(r *sim.Rank) {
		m := mesh.Extract(octree.New(r, 3))
		h := New(m, fem.UnitDomain, agglomTestEta(m, 0), Options{})

		if h.Degenerate() {
			t.Errorf("rank %d: hierarchy degenerate: levels %v", r.ID(), h.LevelElems())
		}
		le := h.LevelElems()
		if le[0] != 512 {
			t.Errorf("fine level has %d elements, want 512", le[0])
		}
		if last := le[len(le)-1]; last > h.CoarseTarget() {
			t.Errorf("coarsest level has %d elements, want <= %d", last, h.CoarseTarget())
		}
		if cr := h.CoarseRanks(); cr >= p {
			t.Errorf("coarsest level still on %d ranks, want < %d", cr, p)
		}
		if h.NumLevels() != len(le) {
			t.Errorf("NumLevels %d != len(LevelElems) %d", h.NumLevels(), len(le))
		}
		// Exactly one of: local stack reaches the coarsest level, or it
		// ends above a repartition gap this rank is not in.
		if h.coarseHere == (h.partial != nil) {
			t.Errorf("rank %d: coarseHere=%v partial=%v — want exactly one",
				r.ID(), h.coarseHere, h.partial != nil)
		}
		agglomerated := false
		for _, rp := range h.rps {
			if rp != nil {
				agglomerated = true
			}
		}
		if h.coarseHere && !agglomerated {
			t.Errorf("rank %d holds the coarsest level but saw no repartition gap", r.ID())
		}

		// The V-cycle must be symmetric across the gap: <Mx, y> == <x, My>
		// to rounding, or MINRES/CG would silently lose its convergence
		// guarantee.
		pc := h.Precond(agglomTestBC)
		lay := m.Layout()
		x, y := la.NewVec(lay), la.NewVec(lay)
		mx, my := la.NewVec(lay), la.NewVec(lay)
		for i := range x.Data {
			g := float64(lay.Start() + int64(i))
			x.Data[i] = math.Sin(3*g + 1)
			y.Data[i] = math.Cos(2*g - 1)
		}
		pc.Apply(x, mx)
		pc.Apply(y, my)
		a, b := mx.Dot(y), x.Dot(my)
		scale := mx.Norm2() * y.Norm2()
		if math.Abs(a-b) > 1e-10*scale {
			t.Errorf("V-cycle not symmetric across agglomeration: <Mx,y>=%v <x,My>=%v", a, b)
		}
	})
}

// TestAgglomRebuildMatchesFresh: on an agglomerated hierarchy, Rebuild
// with a new viscosity must leave the preconditioner indistinguishable
// from a hierarchy freshly built for that viscosity — including the
// viscosity shipped across the gap and the distributed coarse operator.
func TestAgglomRebuildMatchesFresh(t *testing.T) {
	const p = 8
	sim.Run(p, func(r *sim.Rank) {
		m := mesh.Extract(octree.New(r, 2))
		dom := fem.UnitDomain
		eta1 := agglomTestEta(m, 0)
		eta2 := agglomTestEta(m, 2)

		reused := New(m, dom, eta1, Options{})
		pcReused := reused.Precond(agglomTestBC)
		reused.Rebuild(eta2)

		fresh := New(m, dom, eta2, Options{})
		pcFresh := fresh.Precond(agglomTestBC)

		if got, want := reused.CoarseRanks(), fresh.CoarseRanks(); got != want {
			t.Errorf("coarse ranks differ after rebuild: %d vs %d", got, want)
		}

		lay := m.Layout()
		x := la.NewVec(lay)
		for i := range x.Data {
			g := float64(lay.Start() + int64(i))
			x.Data[i] = math.Sin(5*g) + 0.3*math.Cos(g)
		}
		yr, yf := la.NewVec(lay), la.NewVec(lay)
		pcReused.Apply(x, yr)
		pcFresh.Apply(x, yf)
		diff := yr.Clone()
		diff.AXPY(-1, yf)
		if n, s := diff.NormInf(), yf.NormInf(); n > 1e-12*s {
			t.Errorf("rebuilt apply differs from fresh: %v (scale %v)", n, s)
		}
	})
}

// TestRepartIsExactPermutation pins the repartition gap's defining
// property, bitwise: NodeForward delivers each canonical node's value
// to its new owner unchanged, ElemForward does the same per element in
// the shadow's leaf order, and NodeBackward is the exact inverse — so
// the gap transfers are a permutation pair (Π, Πᵀ) and the V-cycle's
// symmetry survives agglomeration.
func TestRepartIsExactPermutation(t *testing.T) {
	const p = 16
	sim.Run(p, func(r *sim.Rank) {
		m := mesh.Extract(octree.New(r, 2)) // 64 elements, 4 per rank
		rp, sm := buildRepart(m, 4)
		if (sm != nil) != (r.ID() < 4) {
			t.Fatalf("rank %d: shadow mesh presence wrong", r.ID())
		}

		// Position-keyed node field: after NodeForward, every shadow-owned
		// node must hold exactly the value its canonical position encodes.
		nodeVal := func(pos [3]uint32) float64 {
			return float64(pos[0])*1e-2 + float64(pos[1])*1e3 + float64(pos[2])*1e8 + 0.125
		}
		src := la.NewVec(m.Layout())
		for i, pos := range m.OwnedPos {
			src.Data[i] = nodeVal(pos)
		}
		var dst *la.Vec
		if sm != nil {
			dst = la.NewVec(sm.Layout())
		}
		rp.NodeForward(src, dst)
		if sm != nil {
			for i, pos := range sm.OwnedPos {
				if dst.Data[i] != nodeVal(pos) {
					t.Fatalf("shadow node %d (%v): got %v want %v", i, pos, dst.Data[i], nodeVal(pos))
				}
			}
		}

		// NodeBackward must invert NodeForward exactly.
		back := la.NewVec(m.Layout())
		rp.NodeBackward(dst, back)
		for i := range back.Data {
			if back.Data[i] != src.Data[i] {
				t.Fatalf("round trip changed node %d: %v -> %v", i, src.Data[i], back.Data[i])
			}
		}

		// Per-element values must arrive keyed to the same octants.
		elemVal := func(o [4]uint32) float64 {
			return float64(o[0]) + float64(o[1])*1e3 + float64(o[2])*1e6 + float64(o[3])
		}
		eta := make([]float64, len(m.Leaves))
		for ei, leaf := range m.Leaves {
			eta[ei] = elemVal([4]uint32{leaf.X, leaf.Y, leaf.Z, uint32(leaf.Level)})
		}
		out := rp.ElemForward(eta)
		if sm == nil {
			if len(out) != 0 {
				t.Fatalf("non-member received %d element values", len(out))
			}
			return
		}
		if len(out) != len(sm.Leaves) {
			t.Fatalf("shadow got %d element values for %d leaves", len(out), len(sm.Leaves))
		}
		for ei, leaf := range sm.Leaves {
			if want := elemVal([4]uint32{leaf.X, leaf.Y, leaf.Z, uint32(leaf.Level)}); out[ei] != want {
				t.Fatalf("shadow element %d: got %v want %v", ei, out[ei], want)
			}
		}
	})
}

// TestSubsetReuseProperty exercises hierarchy reuse across many
// Rebuilds (the convection-loop pattern) on an agglomerated hierarchy:
// each Rebuild must match a one-shot build for that viscosity.
func TestSubsetReuseProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property loop")
	}
	const p = 8
	sim.Run(p, func(r *sim.Rank) {
		m := mesh.Extract(octree.New(r, 2))
		dom := fem.UnitDomain
		h := New(m, dom, agglomTestEta(m, 0), Options{})
		pc := h.Precond(agglomTestBC)
		lay := m.Layout()
		x := la.NewVec(lay)
		for i := range x.Data {
			g := float64(lay.Start() + int64(i))
			x.Data[i] = math.Cos(2 * g)
		}
		for trial := 1; trial <= 3; trial++ {
			eta := agglomTestEta(m, float64(trial))
			h.Rebuild(eta)
			want := New(m, dom, eta, Options{}).Precond(agglomTestBC)
			yr, yf := la.NewVec(lay), la.NewVec(lay)
			pc.Apply(x, yr)
			want.Apply(x, yf)
			diff := yr.Clone()
			diff.AXPY(-1, yf)
			if n, s := diff.NormInf(), yf.NormInf(); n > 1e-12*s {
				t.Errorf("trial %d: rebuilt apply differs from fresh: %v (scale %v)", trial, n, s)
			}
		}
	})
}

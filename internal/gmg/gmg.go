// Package gmg implements a matrix-free geometric multigrid preconditioner
// for the velocity block of the Stokes system — the paper-scale
// alternative to the assembled AMG hierarchies of package amg. The level
// hierarchy is the octree itself: each coarser level is a CoarsenedCopy
// of the finer tree (complete families merged, 2:1 balance restored) with
// its own extracted mesh, and grid transfer is the trilinear stencil pair
// fem.Transfer (prolongation interpolates the constrained coarse space,
// restriction is its exact transpose). Smoothing is Chebyshev-accelerated
// Jacobi driven by a matrix-free operator diagonal
// (fem.AssembleScalarDiag); the level operators apply the variable-
// viscosity stiffness per element from cached unit kernels, sharing
// matfree's compact slot numbering and ghost-exchange machinery. Only the
// coarsest level assembles a CSR, solved by one redundant AMG hierarchy
// (package amg) — so with a matrix-free Stokes apply the whole solve
// never assembles a fine-level matrix, and setup cost is dominated by the
// (geometrically decaying) coarse mesh extractions instead of fine
// assembly.
package gmg

import (
	"rhea/internal/amg"
	"rhea/internal/fem"
	"rhea/internal/krylov"
	"rhea/internal/la"
	"rhea/internal/matfree"
	"rhea/internal/mesh"
	"rhea/internal/octree"
)

// Options tunes hierarchy depth, smoothing and the coarse solve.
type Options struct {
	// MaxLevels caps the number of mesh levels (default 25).
	MaxLevels int
	// CoarseElems stops coarsening once the global element count is at
	// or below this (default 32); that level assembles its CSR and is
	// solved by one redundant AMG hierarchy.
	CoarseElems int64
	// PreSmooth/PostSmooth are the Chebyshev applications before/after
	// the coarse correction (default 1 each).
	PreSmooth, PostSmooth int
	// ChebDegree is the number of operator applies per Chebyshev
	// application (default 3).
	ChebDegree int
	// ChebRatio sets the targeted interval [1.1*lmax/ratio, 1.1*lmax]
	// (default 4).
	ChebRatio float64
	// PowerIters is the power-iteration count for the per-level lambda_max
	// estimate (default 10).
	PowerIters int
	// AMG tunes the coarsest-level assembled solve.
	AMG amg.Options
}

func (o Options) withDefaults() Options {
	if o.MaxLevels == 0 {
		o.MaxLevels = 25
	}
	if o.CoarseElems == 0 {
		o.CoarseElems = 32
	}
	if o.PreSmooth == 0 {
		o.PreSmooth = 1
	}
	if o.PostSmooth == 0 {
		o.PostSmooth = 1
	}
	if o.ChebDegree == 0 {
		o.ChebDegree = 3
	}
	if o.ChebRatio == 0 {
		o.ChebRatio = 4
	}
	if o.PowerIters == 0 {
		o.PowerIters = 10
	}
	return o
}

// level is one mesh level of the hierarchy with its viscosity and cached
// unit element kernels (viscosity scales linearly, so one [8][8] brick
// per octree level serves every element of that size).
type level struct {
	mesh *mesh.Mesh
	eta  []float64
	sm   *matfree.SlotMap
	kern []*[8][8]float64 // per element, aliased per octree level
}

func newLevel(m *mesh.Mesh, dom fem.Domain, eta []float64) *level {
	lv := &level{mesh: m, eta: eta, sm: matfree.NewSlotMap(m, 1)}
	byLevel := map[uint8]*[8][8]float64{}
	lv.kern = make([]*[8][8]float64, len(m.Leaves))
	for ei, leaf := range m.Leaves {
		k, ok := byLevel[leaf.Level]
		if !ok {
			K := fem.StiffnessBrick(dom.ElemSize(leaf), 1)
			k = &K
			byLevel[leaf.Level] = k
		}
		lv.kern[ei] = k
	}
	return lv
}

// Hierarchy is the geometric level stack shared by the per-component
// preconditioners: meshes, viscosities and transfer stencils are
// boundary-condition independent, so they are built once and reused for
// all three velocity components.
type Hierarchy struct {
	dom    fem.Domain
	opts   Options
	levels []*level        // levels[0] is the finest (input) mesh
	trans  []*fem.Transfer // trans[l] couples levels l (fine) and l+1 (coarse)
	elems  []int64         // global element count per level
}

// New derives the coarse level stack from the extracted fine mesh
// (collective): repeated octree CoarsenedCopy + mesh extraction until the
// global element count falls to Options.CoarseElems, the level cap is
// hit, or coarsening stops making progress under the partition. etaElem
// is the fine per-element viscosity; coarse viscosities are volume-
// weighted averages over the children.
func New(m *mesh.Mesh, dom fem.Domain, etaElem []float64, opts Options) *Hierarchy {
	o := opts.withDefaults()
	h := &Hierarchy{dom: dom, opts: o}
	h.levels = append(h.levels, newLevel(m, dom, etaElem))
	tree := octree.FromLeaves(m.Rank, m.Leaves)
	h.elems = append(h.elems, tree.NumGlobal())

	for len(h.levels) < o.MaxLevels && h.elems[len(h.elems)-1] > o.CoarseElems {
		ctree, merged := tree.CoarsenedCopy()
		ce := ctree.NumGlobal()
		// Stop when coarsening makes no progress: no family merged, or
		// balance re-split everything (rank-boundary families never merge,
		// so the count can stall above CoarseElems).
		if merged == 0 || ce >= h.elems[len(h.elems)-1] {
			break
		}
		fine := h.levels[len(h.levels)-1]
		cm := mesh.Extract(ctree)
		ceta := restrictEta(fine.mesh, cm, fine.eta)
		h.trans = append(h.trans, fem.NewTransfer(fine.mesh, cm))
		h.levels = append(h.levels, newLevel(cm, dom, ceta))
		h.elems = append(h.elems, ce)
		tree = ctree
	}
	return h
}

// restrictEta volume-averages the fine per-element viscosity onto the
// coarse elements (local: coverage alignment makes every fine leaf's
// coarse container local).
func restrictEta(fine, coarse *mesh.Mesh, eta []float64) []float64 {
	sumW := make([]float64, len(coarse.Leaves))
	sumE := make([]float64, len(coarse.Leaves))
	for ei, leaf := range fine.Leaves {
		ci := findLeaf(coarse, leaf)
		w := float64(leaf.Len())
		w = w * w * w
		sumW[ci] += w
		sumE[ci] += w * eta[ei]
	}
	out := make([]float64, len(coarse.Leaves))
	for ci := range out {
		if sumW[ci] > 0 {
			out[ci] = sumE[ci] / sumW[ci]
		} else {
			out[ci] = 1
		}
	}
	return out
}

// NumLevels returns the hierarchy depth (1 = no coarsening happened).
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// LevelElems returns the global element count per level, finest first.
func (h *Hierarchy) LevelElems() []int64 { return append([]int64(nil), h.elems...) }

// CoarseNodes returns the global node count of the coarsest level — the
// only level whose operator is ever assembled.
func (h *Hierarchy) CoarseNodes() int64 { return h.levels[len(h.levels)-1].mesh.NGlobal }

// Precond builds the matrix-free V-cycle preconditioner for one scalar
// velocity component with the given Dirichlet set (collective: it
// gathers BC masks, computes matrix-free diagonals and lambda_max
// estimates per level, and assembles + gathers the coarsest CSR). The
// result implements krylov.Operator and is SPD: symmetric Chebyshev
// smoothing, transpose transfer pair, symmetric coarse solve.
func (h *Hierarchy) Precond(bc fem.ScalarBC) krylov.Operator {
	c := &Component{h: h}
	last := len(h.levels) - 1
	for l, lv := range h.levels {
		layout := lv.mesh.Layout()
		c.b = append(c.b, la.NewVec(layout))
		c.x = append(c.x, la.NewVec(layout))
		if l == last {
			// Coarsest level: assembled CSR, redundant AMG solve.
			eta := lv.eta
			Ac, _, _ := fem.AssembleScalar(lv.mesh, h.dom,
				func(ei int, hh [3]float64) [8][8]float64 {
					return fem.StiffnessBrick(hh, eta[ei])
				}, nil, bc)
			c.coarse = amg.NewRedundant(Ac, h.opts.AMG)
			bcd := fem.GatherBC(lv.mesh, h.dom, bc)
			c.ops = append(c.ops, newLevelOp(lv, bcd))
			break
		}
		bcd := fem.GatherBC(lv.mesh, h.dom, bc)
		op := newLevelOp(lv, bcd)
		c.ops = append(c.ops, op)
		eta := lv.eta
		diag := fem.AssembleScalarDiag(lv.mesh, h.dom,
			func(ei int, hh [3]float64) [8][8]float64 {
				return fem.StiffnessBrick(hh, eta[ei])
			}, bcd)
		dinv := la.NewVec(layout)
		for i, v := range diag.Data {
			if v != 0 {
				dinv.Data[i] = 1 / v
			} else {
				dinv.Data[i] = 1
			}
		}
		c.dinv = append(c.dinv, dinv)
		c.lmax = append(c.lmax, krylov.EstimateLambdaMax(op, dinv, h.opts.PowerIters))
		c.r = append(c.r, la.NewVec(layout))
		c.d = append(c.d, la.NewVec(layout))
		c.z = append(c.z, la.NewVec(layout))
		c.w = append(c.w, la.NewVec(layout))
	}
	return c
}

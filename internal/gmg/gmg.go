// Package gmg implements a matrix-free geometric multigrid preconditioner
// for the velocity block of the Stokes system — the paper-scale
// alternative to the assembled AMG hierarchies of package amg. The level
// hierarchy is the octree itself: each coarser level is a CoarsenedCopy
// of the finer tree (complete families merged, 2:1 balance restored) with
// its own extracted mesh, and grid transfer is the trilinear stencil pair
// fem.Transfer (prolongation interpolates the constrained coarse space,
// restriction is its exact transpose). Smoothing is Chebyshev-accelerated
// Jacobi; the level operators apply the variable-viscosity stiffness per
// element from cached unit kernels, sharing matfree's compact slot
// numbering and ghost-exchange machinery. Only the coarsest level
// assembles a CSR, solved by one redundant AMG hierarchy (package amg) —
// so with a matrix-free Stokes apply the whole solve never assembles a
// fine-level matrix.
//
// Setup is split so a convection time loop can amortize it. NewHierarchy
// builds everything that depends only on the mesh: level trees and
// meshes, slot maps, transfer stencils, unit kernels, restriction maps,
// and slot-space assembly plans whose coefficients make the smoother
// diagonals and the coarse CSR linear functions of the element
// viscosities. Rebuild refreshes everything that depends on the
// viscosity — restricted per-level etas, smoother diagonals (one flat
// plan scan each), Chebyshev lambda_max estimates (a short Lanczos run,
// shared across the three velocity components), and the coarse AMG
// values (one vector all-reduce) — at a small fraction of the hierarchy
// construction cost, and leaves the result indistinguishable from a
// freshly built hierarchy for the same viscosity.
package gmg

import (
	"rhea/internal/amg"
	"rhea/internal/fem"
	"rhea/internal/forest"
	"rhea/internal/krylov"
	"rhea/internal/la"
	"rhea/internal/matfree"
	"rhea/internal/mesh"
	"rhea/internal/octree"
)

// Options tunes hierarchy depth, smoothing and the coarse solve.
type Options struct {
	// MaxLevels caps the number of mesh levels (default 25).
	MaxLevels int
	// CoarseElems stops coarsening once the global element count is at
	// or below this (default 32); that level assembles its CSR and is
	// solved by one redundant AMG hierarchy.
	CoarseElems int64
	// PreSmooth/PostSmooth are the Chebyshev applications before/after
	// the coarse correction (default 1 each).
	PreSmooth, PostSmooth int
	// ChebDegree is the number of operator applies per Chebyshev
	// application (default 3).
	ChebDegree int
	// ChebRatio sets the targeted interval [1.1*lmax/ratio, 1.1*lmax]
	// (default 4).
	ChebRatio float64
	// LanczosSteps is the Lanczos step count for the per-level lambda_max
	// estimate of the Jacobi-preconditioned spectrum (default 6 —
	// Lanczos reaches the extreme eigenvalue of these spectra within a
	// few percent by then, validated against 4-decade random viscosity
	// fields). The estimate runs once per viscosity rebuild, on one
	// velocity component only — the three components' spectra differ
	// just by boundary identity rows, well inside the Chebyshev
	// interval's 1.1 safety factor.
	LanczosSteps int
	// AMG tunes the coarsest-level assembled solve.
	AMG amg.Options
}

func (o Options) withDefaults() Options {
	if o.MaxLevels == 0 {
		o.MaxLevels = 25
	}
	if o.CoarseElems == 0 {
		o.CoarseElems = 32
	}
	if o.PreSmooth == 0 {
		o.PreSmooth = 1
	}
	if o.PostSmooth == 0 {
		o.PostSmooth = 1
	}
	if o.ChebDegree == 0 {
		o.ChebDegree = 3
	}
	if o.ChebRatio == 0 {
		o.ChebRatio = 4
	}
	if o.LanczosSteps == 0 {
		o.LanczosSteps = 6
	}
	return o
}

// level is one mesh level of the hierarchy with its viscosity and cached
// unit element kernels (viscosity scales linearly, so one [8][8] brick
// per octree level serves every element of that size). eta is the only
// viscosity-dependent field; everything else survives a Rebuild.
type level struct {
	mesh  *mesh.Mesh
	eta   []float64
	sm    *matfree.SlotMap
	kern  []*[8][8]float64 // per element, aliased per octree level
	dplan []diagTerm       // slot-space diagonal assembly plan (BC-independent)
}

func newLevel(m *mesh.Mesh, dom fem.Domain) *level {
	lv := &level{mesh: m, sm: matfree.NewSlotMap(m, 1), kern: fem.UnitStiffnessKernels(m, dom)}
	lv.dplan = buildDiagPlan(lv)
	return lv
}

// Hierarchy is the geometric level stack shared by the per-component
// preconditioners: meshes, viscosities and transfer stencils are
// boundary-condition independent, so they are built once and reused for
// all three velocity components. The mesh-dependent half (level meshes,
// slot maps, transfer stencils, unit kernels) is built by NewHierarchy
// and never touched again; the viscosity-dependent half (per-level etas,
// smoother diagonals, Chebyshev eigenvalue bounds, coarse AMG) is
// (re)derived by Rebuild, so a time loop keeps one Hierarchy per mesh and
// refreshes it per Picard iteration.
type Hierarchy struct {
	dom    fem.Domain
	opts   Options
	levels []*level        // levels[0] is the finest (input) mesh
	trans  []*fem.Transfer // trans[l] couples levels l (fine) and l+1 (coarse)
	elems  []int64         // global element count per level
	restr  [][]int32       // restr[l]: fine element of level l -> coarse element of level l+1
	comps  []*Component    // components registered by Precond, refreshed by Rebuild
	hasEta bool            // Rebuild has run at least once

	// lmaxEta and diagEta cache the per-level lambda_max estimates and
	// raw operator diagonals of the current viscosity, computed by the
	// first component refreshed after a Rebuild and shared by the other
	// two (the diagonal is boundary-condition independent; each
	// component only overwrites its own Dirichlet rows with 1).
	lmaxEta   []float64
	diagEta   []*la.Vec
	lmaxValid bool
}

// NewHierarchy derives the mesh-dependent coarse level stack from the
// extracted fine mesh (collective): repeated CoarsenedCopy (octree or
// forest, matching the mesh's origin) + mesh extraction until the global
// element count falls to Options.CoarseElems, the level cap is hit, or
// coarsening stops making progress under the partition. No viscosity is
// attached yet — call Rebuild (or use New) before applying any
// preconditioner built from it.
func NewHierarchy(m *mesh.Mesh, dom fem.Domain, opts Options) *Hierarchy {
	o := opts.withDefaults()
	h := &Hierarchy{dom: dom, opts: o}
	h.levels = append(h.levels, newLevel(m, dom))

	coarsen := coarsenerFor(m)
	h.elems = append(h.elems, m.Rank.AllreduceInt64(int64(len(m.Leaves))))

	for len(h.levels) < o.MaxLevels && h.elems[len(h.elems)-1] > o.CoarseElems {
		cm, merged := coarsen()
		if merged == 0 {
			break
		}
		ce := cm.Rank.AllreduceInt64(int64(len(cm.Leaves)))
		// Stop when coarsening makes no progress: no family merged, or
		// balance re-split everything (rank-boundary families never merge,
		// so the count can stall above CoarseElems).
		if ce >= h.elems[len(h.elems)-1] {
			break
		}
		fine := h.levels[len(h.levels)-1]
		h.trans = append(h.trans, fem.NewTransfer(fine.mesh, cm))
		// Fine-to-coarse element containment map, used by every Rebuild
		// to restrict the viscosity without re-searching the Morton order.
		ci := make([]int32, len(fine.mesh.Leaves))
		for ei, leaf := range fine.mesh.Leaves {
			ci[ei] = int32(findLeafIn(cm, treeOf(fine.mesh, ei), leaf))
		}
		h.restr = append(h.restr, ci)
		h.levels = append(h.levels, newLevel(cm, dom))
		h.elems = append(h.elems, ce)
	}
	return h
}

// coarsenerFor returns a closure producing successively coarser meshes:
// octree CoarsenedCopy for single-tree meshes, forest CoarsenedCopy (with
// the mesh's geometry carried down the levels) for forest meshes. The
// second return of each call is the number of families merged globally.
func coarsenerFor(m *mesh.Mesh) func() (*mesh.Mesh, int64) {
	if m.Conn != nil {
		fr := forest.FromLeaves(m.Rank, m.Conn, forestLeaves(m))
		return func() (*mesh.Mesh, int64) {
			cfr, merged := fr.CoarsenedCopy()
			if merged == 0 {
				return nil, 0
			}
			fr = cfr
			return mesh.ExtractForest(cfr, m.Geom), merged
		}
	}
	tree := octree.FromLeaves(m.Rank, m.Leaves)
	return func() (*mesh.Mesh, int64) {
		ctree, merged := tree.CoarsenedCopy()
		if merged == 0 {
			return nil, 0
		}
		tree = ctree
		return mesh.Extract(ctree), merged
	}
}

// forestLeaves reassembles the forest octants of a forest mesh.
func forestLeaves(m *mesh.Mesh) []forest.Octant {
	out := make([]forest.Octant, len(m.Leaves))
	for i, o := range m.Leaves {
		out[i] = forest.Octant{Tree: m.Trees[i], O: o}
	}
	return out
}

// treeOf returns the tree id of element ei (0 on single-tree meshes).
func treeOf(m *mesh.Mesh, ei int) int32 {
	if m.Trees == nil {
		return 0
	}
	return m.Trees[ei]
}

// New builds the hierarchy and attaches the fine per-element viscosity in
// one call (collective) — NewHierarchy followed by Rebuild.
func New(m *mesh.Mesh, dom fem.Domain, etaElem []float64, opts Options) *Hierarchy {
	h := NewHierarchy(m, dom, opts)
	h.Rebuild(etaElem)
	return h
}

// Rebuild re-derives every viscosity-dependent quantity from a new fine
// per-element viscosity while keeping the level meshes, slot maps and
// transfer stencils (collective): coarse viscosities are volume-weighted
// restrictions of etaElem, and every Component handed out by Precond
// refreshes its smoother diagonals, Chebyshev eigenvalue estimates and
// coarsest-level AMG values. After Rebuild the hierarchy preconditions
// exactly as a freshly built one for the same viscosity.
func (h *Hierarchy) Rebuild(etaElem []float64) {
	h.levels[0].eta = etaElem
	for l := 1; l < len(h.levels); l++ {
		h.levels[l].eta = restrictEtaMapped(h.levels[l-1].mesh, h.levels[l].mesh,
			h.restr[l-1], h.levels[l-1].eta)
	}
	h.hasEta = true
	h.lmaxValid = false
	for _, c := range h.comps {
		c.refresh()
	}
}

// restrictEtaMapped volume-averages the fine per-element viscosity onto
// the coarse elements using the precomputed containment map (local:
// coverage alignment makes every fine leaf's coarse container local).
func restrictEtaMapped(fine, coarse *mesh.Mesh, ci []int32, eta []float64) []float64 {
	sumW := make([]float64, len(coarse.Leaves))
	sumE := make([]float64, len(coarse.Leaves))
	for ei, leaf := range fine.Leaves {
		c := ci[ei]
		w := float64(leaf.Len())
		w = w * w * w
		sumW[c] += w
		sumE[c] += w * eta[ei]
	}
	out := make([]float64, len(coarse.Leaves))
	for c := range out {
		if sumW[c] > 0 {
			out[c] = sumE[c] / sumW[c]
		} else {
			out[c] = 1
		}
	}
	return out
}

// FineSlots returns the finest level's block-1 node slot map (owned
// nodes first, then ghosts, one reusable exchange plan). Callers that
// need corner sampling on the fine mesh can share it instead of
// building a duplicate.
func (h *Hierarchy) FineSlots() *matfree.SlotMap { return h.levels[0].sm }

// NumLevels returns the hierarchy depth (1 = no coarsening happened).
func (h *Hierarchy) NumLevels() int { return len(h.levels) }

// LevelElems returns the global element count per level, finest first.
func (h *Hierarchy) LevelElems() []int64 { return append([]int64(nil), h.elems...) }

// CoarseNodes returns the global node count of the coarsest level — the
// only level whose operator is ever assembled.
func (h *Hierarchy) CoarseNodes() int64 { return h.levels[len(h.levels)-1].mesh.NGlobal }

// Precond builds the matrix-free V-cycle preconditioner for one scalar
// velocity component with the given Dirichlet set (collective: it
// gathers BC masks per level and allocates the level operators and work
// vectors). The result implements krylov.Operator and is SPD: symmetric
// Chebyshev smoothing, transpose transfer pair, symmetric coarse solve.
//
// Only the mesh/BC-dependent structure is built here. If a viscosity is
// already attached (New or a prior Rebuild) the component's numeric
// state — smoother diagonals, lambda_max, coarse AMG — is derived
// immediately; otherwise it is deferred to the first Rebuild, which is
// the Setup/Update order the persistent Stokes solver uses.
//
// Every component is registered with the hierarchy and refreshed by
// every subsequent Rebuild, so call Precond once per distinct Dirichlet
// set per hierarchy lifetime (the Stokes solver calls it exactly three
// times per Setup) — repeated calls for the same component would
// accumulate live registrations that each Rebuild keeps paying for.
func (h *Hierarchy) Precond(bc fem.ScalarBC) krylov.Operator {
	c := &Component{h: h}
	last := len(h.levels) - 1
	for l, lv := range h.levels {
		layout := lv.mesh.Layout()
		c.b = append(c.b, la.NewVec(layout))
		c.x = append(c.x, la.NewVec(layout))
		bcd := fem.GatherBC(lv.mesh, h.dom, bc)
		op := newLevelOp(lv, bcd)
		c.ops = append(c.ops, op)
		if l == last {
			c.cplan = buildCoarsePlan(lv, h.dom, bcd)
			break
		}
		c.dinv = append(c.dinv, la.NewVec(layout))
		c.lmax = append(c.lmax, 0) // set by refresh from the hierarchy cache
		c.r = append(c.r, la.NewVec(layout))
		c.d = append(c.d, la.NewVec(layout))
		c.z = append(c.z, la.NewVec(layout))
		c.w = append(c.w, la.NewVec(layout))
	}
	h.comps = append(h.comps, c)
	if h.hasEta {
		c.refresh()
	}
	return c
}

// sharedDiag computes the raw operator diagonal of smoothed level l for
// the level's current viscosity (collective: one ghost scatter-add): a
// flat scan of the precomputed slot-space plan, agreeing with
// fem.AssembleScalarDiag to rounding at unconstrained nodes. The result
// is boundary-condition independent and cached per Rebuild, so the three
// velocity components share one scan per level.
func (h *Hierarchy) sharedDiag(l int) *la.Vec {
	if h.lmaxValid {
		return h.diagEta[l]
	}
	lv := h.levels[l]
	sm := lv.sm
	n := sm.NOwned
	acc := make([]float64, sm.NSlots())
	for _, t := range lv.dplan {
		acc[t.Slot] += lv.eta[t.Elem] * t.Coef
	}
	d := la.NewVec(lv.mesh.Layout())
	copy(d.Data, acc[:n])
	sm.GX.ScatterAdd(acc[n:], d.Data)
	h.diagEta[l] = d
	return d
}

// refresh re-derives the component's viscosity-dependent state from the
// current level etas (collective): matrix-free smoother diagonals per
// smoothed level (inverting the shared diagonal scan, with this
// component's Dirichlet rows set to 1), the Chebyshev lambda_max
// estimates (a short Lanczos run per level, done by the first component
// after each Rebuild and shared via the hierarchy cache), and the
// assembled + AMG-setup coarsest operator from the cached unit kernels.
func (c *Component) refresh() {
	h := c.h
	last := len(h.levels) - 1
	if len(h.lmaxEta) < last {
		h.lmaxEta = make([]float64, last)
		h.diagEta = make([]*la.Vec, last)
	}
	for l, lv := range h.levels {
		if l == last {
			// Coarsest level: replicated CSR values from the cached
			// pattern plan, redundant AMG solve.
			c.coarse = amg.NewRedundantFromGlobal(c.cplan.values(lv), lv.mesh.Layout(), h.opts.AMG)
			break
		}
		d := h.sharedDiag(l)
		dinv := c.dinv[l]
		for i, v := range d.Data {
			if v != 0 {
				dinv.Data[i] = 1 / v
			} else {
				dinv.Data[i] = 1
			}
		}
		for _, s := range c.ops[l].ownFixed {
			dinv.Data[s] = 1 // Dirichlet identity rows
		}
		if !h.lmaxValid {
			h.lmaxEta[l] = krylov.EstimateLambdaMaxLanczos(c.ops[l], dinv, h.opts.LanczosSteps)
		}
		c.lmax[l] = h.lmaxEta[l]
	}
	h.lmaxValid = true
}

// Package gmg implements a matrix-free geometric multigrid preconditioner
// for the velocity block of the Stokes system — the paper-scale
// alternative to the assembled AMG hierarchies of package amg. The level
// hierarchy is the octree itself: each coarser level is a CoarsenedCopy
// of the finer tree (complete families merged, 2:1 balance restored) with
// its own extracted mesh, and grid transfer is the trilinear stencil pair
// fem.Transfer (prolongation interpolates the constrained coarse space,
// restriction is its exact transpose). Smoothing is Chebyshev-accelerated
// Jacobi; the level operators apply the variable-viscosity stiffness per
// element from cached unit kernels, sharing matfree's compact slot
// numbering and ghost-exchange machinery. Only the coarsest level
// assembles a CSR, solved distributed (AMG-preconditioned CG, package
// amg) on whatever communicator still holds elements — so with a
// matrix-free Stokes apply the whole solve never assembles a fine-level
// matrix, and no level's matrix is ever replicated across ranks.
//
// The hierarchy is partition-aware: once a level falls below
// Options.AgglomThreshold elements per rank, its octants are
// repartitioned onto a power-of-two subset of the ranks (sim
// communicator subsets) before coarsening continues, and ranks outside
// the subset idle below that gap. Agglomeration removes the two
// obstructions a fixed partition puts in the way of deep coarsening at
// scale: rank-boundary families never merge, so coarsening stalls with
// ~P elements left, and coarse-level collectives pay ceil(log2 P)
// rounds to smooth a handful of elements. The repartition gap itself is
// a pure permutation of node values (restriction and prolongation
// across the gap are transposes of each other), so the V-cycle stays
// symmetric.
//
// Setup is split so a convection time loop can amortize it. NewHierarchy
// builds everything that depends only on the mesh: level trees and
// meshes, slot maps, transfer stencils, unit kernels, restriction maps,
// and slot-space assembly plans whose coefficients make the smoother
// diagonals and the coarse CSR linear functions of the element
// viscosities. Rebuild refreshes everything that depends on the
// viscosity — restricted per-level etas, smoother diagonals (one flat
// plan scan each), Chebyshev lambda_max estimates (a short Lanczos run,
// shared across the three velocity components), and the distributed
// coarse operator (an assembly over the agglomerated communicator) — at
// a small fraction of the hierarchy construction cost, and leaves the
// result indistinguishable from a freshly built hierarchy for the same
// viscosity.
package gmg

import (
	"rhea/internal/amg"
	"rhea/internal/fem"
	"rhea/internal/forest"
	"rhea/internal/krylov"
	"rhea/internal/la"
	"rhea/internal/matfree"
	"rhea/internal/mesh"
	"rhea/internal/octree"
	"rhea/internal/sim"
)

// Options tunes hierarchy depth, smoothing and the coarse solve.
type Options struct {
	// MaxLevels caps the number of mesh levels (default 25).
	MaxLevels int
	// CoarseElems stops coarsening once the global element count is at
	// or below this (default 32); that level assembles its CSR and is
	// solved distributed on its (agglomerated) communicator.
	CoarseElems int64
	// AgglomThreshold is the minimum elements per rank a level keeps
	// before its octants are agglomerated onto a power-of-two rank
	// subset (default 8). Levels below it repartition first, so
	// coarsening never stalls against rank boundaries and coarse
	// collectives shrink with the work.
	AgglomThreshold int64
	// CoarseRtol/CoarseMaxIt bound the distributed coarsest solve
	// (AMG-preconditioned CG; defaults 1e-10 and 500). The tight default
	// keeps the V-cycle symmetric to solver precision.
	CoarseRtol  float64
	CoarseMaxIt int
	// PreSmooth/PostSmooth are the Chebyshev applications before/after
	// the coarse correction (default 1 each).
	PreSmooth, PostSmooth int
	// ChebDegree is the number of operator applies per Chebyshev
	// application (default 3).
	ChebDegree int
	// ChebRatio sets the targeted interval [1.1*lmax/ratio, 1.1*lmax]
	// (default 4).
	ChebRatio float64
	// LanczosSteps is the Lanczos step count for the per-level lambda_max
	// estimate of the Jacobi-preconditioned spectrum (default 6 —
	// Lanczos reaches the extreme eigenvalue of these spectra within a
	// few percent by then, validated against 4-decade random viscosity
	// fields). The estimate runs once per viscosity rebuild, on one
	// velocity component only — the three components' spectra differ
	// just by boundary identity rows, well inside the Chebyshev
	// interval's 1.1 safety factor.
	LanczosSteps int
	// AMG tunes the coarsest-level assembled solve.
	AMG amg.Options
}

func (o Options) withDefaults() Options {
	if o.MaxLevels == 0 {
		o.MaxLevels = 25
	}
	if o.CoarseElems == 0 {
		o.CoarseElems = 32
	}
	if o.PreSmooth == 0 {
		o.PreSmooth = 1
	}
	if o.PostSmooth == 0 {
		o.PostSmooth = 1
	}
	if o.ChebDegree == 0 {
		o.ChebDegree = 3
	}
	if o.ChebRatio == 0 {
		o.ChebRatio = 4
	}
	if o.LanczosSteps == 0 {
		o.LanczosSteps = 6
	}
	if o.AgglomThreshold == 0 {
		o.AgglomThreshold = 8
	}
	if o.CoarseRtol == 0 {
		o.CoarseRtol = 1e-10
	}
	if o.CoarseMaxIt == 0 {
		o.CoarseMaxIt = 500
	}
	return o
}

// level is one mesh level of the hierarchy with its viscosity and cached
// unit element kernels (viscosity scales linearly, so one [8][8] brick
// per octree level serves every element of that size). eta is the only
// viscosity-dependent field; everything else survives a Rebuild.
type level struct {
	mesh   *mesh.Mesh
	eta    []float64
	sm     *matfree.SlotMap
	kern   []*[8][8]float64 // per element, aliased per octree level
	dplan  []diagTerm       // slot-space diagonal assembly plan (BC-independent)
	repart bool             // shadow of a repartition gap: same global octants
	//                         as the level above on fewer ranks, never smoothed
}

func newLevel(m *mesh.Mesh, dom fem.Domain) *level {
	lv := &level{mesh: m, sm: matfree.NewSlotMap(m, 1), kern: fem.UnitStiffnessKernels(m, dom)}
	lv.dplan = buildDiagPlan(lv)
	return lv
}

// newShadowLevel builds the repartitioned copy of a level: full slot and
// kernel machinery (the coarse solve may assemble here, and coarsening
// continues from it), but no diagonal plan — shadow levels pass the
// residual through unsmoothed, since smoothing them would just repeat
// the finer twin's sweep on fewer ranks.
func newShadowLevel(m *mesh.Mesh, dom fem.Domain) *level {
	return &level{mesh: m, sm: matfree.NewSlotMap(m, 1),
		kern: fem.UnitStiffnessKernels(m, dom), repart: true}
}

// Hierarchy is the geometric level stack shared by the per-component
// preconditioners: meshes, viscosities and transfer stencils are
// boundary-condition independent, so they are built once and reused for
// all three velocity components. The mesh-dependent half (level meshes,
// slot maps, transfer stencils, unit kernels) is built by NewHierarchy
// and never touched again; the viscosity-dependent half (per-level etas,
// smoother diagonals, Chebyshev eigenvalue bounds, coarse AMG) is
// (re)derived by Rebuild, so a time loop keeps one Hierarchy per mesh and
// refreshes it per Picard iteration.
type Hierarchy struct {
	dom    fem.Domain
	opts   Options
	levels []*level        // levels[0] is the finest (input) mesh; local stack only
	trans  []*fem.Transfer // trans[l] couples levels l (fine) and l+1 (coarse); nil at repart gaps
	elems  []int64         // global element count per level
	restr  [][]int32       // restr[l]: fine element of level l -> coarse element of level l+1; nil at repart gaps
	rps    []*repart       // rps[l]: the repartition plan of gap l; nil at coarsen gaps
	comps  []*Component    // components registered by Precond, refreshed by Rebuild
	hasEta bool            // Rebuild has run at least once

	// Exactly one of the following holds on every rank: the local stack
	// ends at the coarsest level of the whole hierarchy (coarseHere), or
	// it ends just above a repartition gap whose subset this rank is not
	// in (partial is that gap's plan — the rank still couples into every
	// transfer across it, then idles while the subset works below).
	coarseHere bool
	partial    *repart

	// Global hierarchy summary, broadcast from rank 0 by finalize so the
	// accessors answer identically on every rank — including ranks whose
	// local stack was truncated by an agglomeration gap.
	gDepth       int
	gElems       []int64
	gCoarseNodes int64
	gCoarseP     int

	// lmaxEta and diagEta cache the per-level lambda_max estimates and
	// raw operator diagonals of the current viscosity, computed by the
	// first component refreshed after a Rebuild and shared by the other
	// two (the diagonal is boundary-condition independent; each
	// component only overwrites its own Dirichlet rows with 1).
	lmaxEta   []float64
	diagEta   []*la.Vec
	lmaxValid bool
}

// NewHierarchy derives the mesh-dependent coarse level stack from the
// extracted fine mesh (collective): repeated CoarsenedCopy (octree or
// forest, matching the mesh's origin) + mesh extraction until the global
// element count falls to Options.CoarseElems or the level cap is hit,
// agglomerating a level onto a power-of-two rank subset whenever its
// elements-per-rank falls below Options.AgglomThreshold or coarsening
// stalls against the partition. Ranks that drop out of a subset return
// with a truncated local stack (and the gap's plan as h.partial); the
// global accessors still answer on them. No viscosity is attached yet —
// call Rebuild (or use New) before applying any preconditioner built
// from it.
func NewHierarchy(m *mesh.Mesh, dom fem.Domain, opts Options) *Hierarchy {
	o := opts.withDefaults()
	h := &Hierarchy{dom: dom, opts: o}
	fineComm := m.Rank
	h.levels = append(h.levels, newLevel(m, dom))
	h.elems = append(h.elems, m.Rank.AllreduceInt64(int64(len(m.Leaves))))

	coarsen := coarsenerFor(m)
	for len(h.levels) < o.MaxLevels && h.elems[len(h.elems)-1] > o.CoarseElems {
		lv := h.levels[len(h.levels)-1]
		E := h.elems[len(h.elems)-1]
		P := int64(lv.mesh.Rank.Size())
		if P > 1 && E < P*o.AgglomThreshold {
			// Too few elements per rank for this partition to keep
			// coarsening productively: agglomerate first, onto few enough
			// ranks that several more octree levels fit above the
			// threshold (factor-8 headroom per level).
			t := E / (8 * o.AgglomThreshold)
			if t < 1 {
				t = 1
			}
			if !h.agglomerate(int(pow2Floor(t))) {
				h.finalize(fineComm)
				return h
			}
			coarsen = coarsenerFor(h.levels[len(h.levels)-1].mesh)
			continue
		}
		cm, merged := coarsen()
		var ce int64
		if merged > 0 {
			ce = cm.Rank.AllreduceInt64(int64(len(cm.Leaves)))
		}
		if merged == 0 || ce >= E {
			// Coarsening stalled under this partition: no family merged,
			// or balance re-split everything (rank-boundary families never
			// merge). On one rank that is genuine degeneration; on more,
			// moving the level onto half the ranks clears the boundaries
			// and unlocks the merges. The coarsener's advanced state is
			// useless either way — rebuild it from the shadow mesh.
			if P == 1 {
				break
			}
			// Jump toward the element-matched rank count (at least halve):
			// a stall caused by rank-boundary families clears after one
			// step, and a stubborn one (2:1 balance re-splitting merges)
			// must not creep down one halving at a time.
			t := pow2Floor(P / 2)
			if et := E / (8 * o.AgglomThreshold); et >= 1 && pow2Floor(et) < t {
				t = pow2Floor(et)
			}
			if !h.agglomerate(int(t)) {
				h.finalize(fineComm)
				return h
			}
			coarsen = coarsenerFor(h.levels[len(h.levels)-1].mesh)
			continue
		}
		h.trans = append(h.trans, fem.NewTransfer(lv.mesh, cm))
		// Fine-to-coarse element containment map, used by every Rebuild
		// to restrict the viscosity without re-searching the Morton order.
		ci := make([]int32, len(lv.mesh.Leaves))
		for ei, leaf := range lv.mesh.Leaves {
			ci[ei] = int32(findLeafIn(cm, treeOf(lv.mesh, ei), leaf))
		}
		h.restr = append(h.restr, ci)
		h.rps = append(h.rps, nil)
		h.levels = append(h.levels, newLevel(cm, dom))
		h.elems = append(h.elems, ce)
	}
	// The coarsest level still spans its whole communicator; agglomerate
	// once more so the distributed coarsest solve runs on a rank count
	// matched to its size.
	if lv := h.levels[len(h.levels)-1]; !lv.repart {
		E := h.elems[len(h.elems)-1]
		if P := int64(lv.mesh.Rank.Size()); P > 1 && E < P*o.AgglomThreshold {
			t := E / o.AgglomThreshold
			if t < 1 {
				t = 1
			}
			if !h.agglomerate(int(pow2Floor(t))) {
				h.finalize(fineComm)
				return h
			}
		}
	}
	h.coarseHere = true
	h.finalize(fineComm)
	return h
}

// agglomerate inserts a repartition gap after the current coarsest
// level, moving its octants onto the first newP ranks of its
// communicator (collective on that communicator). Members of the subset
// get the shadow level appended and report true; the rest record the
// gap as their partial plan, stop growing their stack, and report
// false.
func (h *Hierarchy) agglomerate(newP int) bool {
	lv := h.levels[len(h.levels)-1]
	rp, sm := buildRepart(lv.mesh, newP)
	if sm == nil {
		h.partial = rp
		return false
	}
	h.trans = append(h.trans, nil)
	h.restr = append(h.restr, nil)
	h.rps = append(h.rps, rp)
	h.levels = append(h.levels, newShadowLevel(sm, h.dom))
	h.elems = append(h.elems, h.elems[len(h.elems)-1])
	return true
}

// hierInfo is the global summary finalize broadcasts from rank 0 (a
// member of every agglomerated subset — they are nested rank prefixes),
// so every rank can answer the hierarchy accessors.
type hierInfo struct {
	depth       int
	elems       []int64
	coarseNodes int64
	coarseP     int
}

func (h *Hierarchy) finalize(fineComm *sim.Comm) {
	var info hierInfo
	if fineComm.ID() == 0 {
		last := h.levels[len(h.levels)-1]
		info = hierInfo{
			depth:       len(h.levels),
			elems:       h.elems,
			coarseNodes: last.mesh.NGlobal,
			coarseP:     last.mesh.Rank.Size(),
		}
	}
	info = fineComm.Bcast(0, info, 64).(hierInfo)
	h.gDepth = info.depth
	h.gElems = info.elems
	h.gCoarseNodes = info.coarseNodes
	h.gCoarseP = info.coarseP
}

// coarsenerFor returns a closure producing successively coarser meshes:
// octree CoarsenedCopy for single-tree meshes, forest CoarsenedCopy (with
// the mesh's geometry carried down the levels) for forest meshes. The
// second return of each call is the number of families merged globally.
func coarsenerFor(m *mesh.Mesh) func() (*mesh.Mesh, int64) {
	if m.Conn != nil {
		fr := forest.FromLeaves(m.Rank, m.Conn, forestLeaves(m))
		return func() (*mesh.Mesh, int64) {
			cfr, merged := fr.CoarsenedCopy()
			if merged == 0 {
				return nil, 0
			}
			fr = cfr
			return mesh.ExtractForest(cfr, m.Geom), merged
		}
	}
	tree := octree.FromLeaves(m.Rank, m.Leaves)
	return func() (*mesh.Mesh, int64) {
		ctree, merged := tree.CoarsenedCopy()
		if merged == 0 {
			return nil, 0
		}
		tree = ctree
		return mesh.Extract(ctree), merged
	}
}

// forestLeaves reassembles the forest octants of a forest mesh.
func forestLeaves(m *mesh.Mesh) []forest.Octant {
	out := make([]forest.Octant, len(m.Leaves))
	for i, o := range m.Leaves {
		out[i] = forest.Octant{Tree: m.Trees[i], O: o}
	}
	return out
}

// treeOf returns the tree id of element ei (0 on single-tree meshes).
func treeOf(m *mesh.Mesh, ei int) int32 {
	if m.Trees == nil {
		return 0
	}
	return m.Trees[ei]
}

// New builds the hierarchy and attaches the fine per-element viscosity in
// one call (collective) — NewHierarchy followed by Rebuild.
func New(m *mesh.Mesh, dom fem.Domain, etaElem []float64, opts Options) *Hierarchy {
	h := NewHierarchy(m, dom, opts)
	h.Rebuild(etaElem)
	return h
}

// Rebuild re-derives every viscosity-dependent quantity from a new fine
// per-element viscosity while keeping the level meshes, slot maps and
// transfer stencils (collective): coarse viscosities are volume-weighted
// restrictions of etaElem (shipped across repartition gaps unchanged —
// the octants are identical on both sides), and every Component handed
// out by Precond refreshes its smoother diagonals, Chebyshev eigenvalue
// estimates and the distributed coarsest operator. After Rebuild the
// hierarchy preconditions exactly as a freshly built one for the same
// viscosity.
func (h *Hierarchy) Rebuild(etaElem []float64) {
	h.levels[0].eta = etaElem
	for l := 1; l < len(h.levels); l++ {
		if h.levels[l].repart {
			h.levels[l].eta = h.rps[l-1].ElemForward(h.levels[l-1].eta)
		} else {
			h.levels[l].eta = restrictEtaMapped(h.levels[l-1].mesh, h.levels[l].mesh,
				h.restr[l-1], h.levels[l-1].eta)
		}
	}
	if h.partial != nil {
		// This rank idles below its last level, but the gap's viscosity
		// transfer is collective on the pre-gap communicator.
		h.partial.ElemForward(h.levels[len(h.levels)-1].eta)
	}
	h.hasEta = true
	h.lmaxValid = false
	for _, c := range h.comps {
		c.refresh()
	}
}

// restrictEtaMapped volume-averages the fine per-element viscosity onto
// the coarse elements using the precomputed containment map (local:
// coverage alignment makes every fine leaf's coarse container local).
func restrictEtaMapped(fine, coarse *mesh.Mesh, ci []int32, eta []float64) []float64 {
	sumW := make([]float64, len(coarse.Leaves))
	sumE := make([]float64, len(coarse.Leaves))
	for ei, leaf := range fine.Leaves {
		c := ci[ei]
		w := float64(leaf.Len())
		w = w * w * w
		sumW[c] += w
		sumE[c] += w * eta[ei]
	}
	out := make([]float64, len(coarse.Leaves))
	for c := range out {
		if sumW[c] > 0 {
			out[c] = sumE[c] / sumW[c]
		} else {
			out[c] = 1
		}
	}
	return out
}

// FineSlots returns the finest level's block-1 node slot map (owned
// nodes first, then ghosts, one reusable exchange plan). Callers that
// need corner sampling on the fine mesh can share it instead of
// building a duplicate.
func (h *Hierarchy) FineSlots() *matfree.SlotMap { return h.levels[0].sm }

// NumLevels returns the global hierarchy depth (1 = no coarsening
// happened), valid on every rank — including ranks whose local stack
// was truncated by an agglomeration gap.
func (h *Hierarchy) NumLevels() int { return h.gDepth }

// LevelElems returns the global element count per level, finest first
// (repartition gaps keep the count — the shadow level holds the same
// octants on fewer ranks). Valid on every rank.
func (h *Hierarchy) LevelElems() []int64 { return append([]int64(nil), h.gElems...) }

// CoarseNodes returns the global node count of the coarsest level — the
// only level whose operator is ever assembled. Valid on every rank.
func (h *Hierarchy) CoarseNodes() int64 { return h.gCoarseNodes }

// CoarseRanks returns how many ranks hold the coarsest level after
// agglomeration. Valid on every rank.
func (h *Hierarchy) CoarseRanks() int { return h.gCoarseP }

// Degenerate reports that coarsening stopped above Options.CoarseElems
// — the hierarchy is too shallow for level-independent convergence and
// its coarsest solve carries more work than intended. With
// agglomeration this only happens on meshes a single rank cannot
// coarsen (pathological refinement patterns), not from partition
// stalls. Valid on every rank.
func (h *Hierarchy) Degenerate() bool { return h.gElems[h.gDepth-1] > h.opts.CoarseElems }

// CoarseTarget returns the effective CoarseElems option after defaults —
// the element count coarsening aims for.
func (h *Hierarchy) CoarseTarget() int64 { return h.opts.CoarseElems }

// Precond builds the matrix-free V-cycle preconditioner for one scalar
// velocity component with the given Dirichlet set (collective: it
// gathers BC masks per level and allocates the level operators and work
// vectors). The result implements krylov.Operator and is SPD: symmetric
// Chebyshev smoothing, transpose transfer pair, symmetric coarse solve.
//
// Only the mesh/BC-dependent structure is built here. If a viscosity is
// already attached (New or a prior Rebuild) the component's numeric
// state — smoother diagonals, lambda_max, coarse AMG — is derived
// immediately; otherwise it is deferred to the first Rebuild, which is
// the Setup/Update order the persistent Stokes solver uses.
//
// Every component is registered with the hierarchy and refreshed by
// every subsequent Rebuild, so call Precond once per distinct Dirichlet
// set per hierarchy lifetime (the Stokes solver calls it exactly three
// times per Setup) — repeated calls for the same component would
// accumulate live registrations that each Rebuild keeps paying for.
func (h *Hierarchy) Precond(bc fem.ScalarBC) krylov.Operator {
	c := &Component{h: h}
	for _, lv := range h.levels {
		layout := lv.mesh.Layout()
		bcd := fem.GatherBC(lv.mesh, h.dom, bc)
		c.bcds = append(c.bcds, bcd)
		c.ops = append(c.ops, newLevelOp(lv, bcd))
		c.b = append(c.b, la.NewVec(layout))
		c.x = append(c.x, la.NewVec(layout))
		c.dinv = append(c.dinv, la.NewVec(layout))
		c.lmax = append(c.lmax, 0) // set by refresh from the hierarchy cache
		c.r = append(c.r, la.NewVec(layout))
		c.d = append(c.d, la.NewVec(layout))
		c.z = append(c.z, la.NewVec(layout))
		c.w = append(c.w, la.NewVec(layout))
	}
	h.comps = append(h.comps, c)
	if h.hasEta {
		c.refresh()
	}
	return c
}

// FineDiag returns the raw (boundary-condition independent) diagonal of
// the finest level's viscosity-scaled scalar stiffness operator in the
// node layout (collective on the first call after a Rebuild, cached
// afterwards). The Stokes solver's free-slip boundary Jacobi rows are
// built from it.
func (h *Hierarchy) FineDiag() *la.Vec { return h.sharedDiag(0) }

// sharedDiag computes the raw operator diagonal of smoothed level l for
// the level's current viscosity (collective: one ghost scatter-add): a
// flat scan of the precomputed slot-space plan, agreeing with
// fem.AssembleScalarDiag to rounding at unconstrained nodes. The result
// is boundary-condition independent and cached per Rebuild, so the three
// velocity components share one scan per level.
func (h *Hierarchy) sharedDiag(l int) *la.Vec {
	if h.lmaxValid {
		return h.diagEta[l]
	}
	lv := h.levels[l]
	sm := lv.sm
	n := sm.NOwned
	acc := make([]float64, sm.NSlots())
	for _, t := range lv.dplan {
		acc[t.Slot] += lv.eta[t.Elem] * t.Coef
	}
	d := la.NewVec(lv.mesh.Layout())
	copy(d.Data, acc[:n])
	sm.GX.ScatterAdd(acc[n:], d.Data)
	h.diagEta[l] = d
	return d
}

// refresh re-derives the component's viscosity-dependent state from the
// current level etas (collective): matrix-free smoother diagonals per
// smoothed level (inverting the shared diagonal scan, with this
// component's Dirichlet rows set to 1), the Chebyshev lambda_max
// estimates (a short Lanczos run per level, done by the first component
// after each Rebuild and shared via the hierarchy cache), and the
// distributed coarsest operator, assembled from the cached unit kernels
// over the agglomerated communicator — never replicated.
func (c *Component) refresh() {
	h := c.h
	nl := len(h.levels)
	if len(h.lmaxEta) < nl {
		h.lmaxEta = make([]float64, nl)
		h.diagEta = make([]*la.Vec, nl)
	}
	for l, lv := range h.levels {
		if h.coarseHere && l == nl-1 {
			// Coarsest level: assemble this rank's row block of the
			// viscosity-scaled operator and set up the distributed solve.
			kern, eta := lv.kern, lv.eta
			elemMat := func(ei int, _ [3]float64) [8][8]float64 {
				K := *kern[ei]
				e := eta[ei]
				for a := 0; a < 8; a++ {
					for b := 0; b < 8; b++ {
						K[a][b] *= e
					}
				}
				return K
			}
			Ac, _, _ := fem.AssembleScalarWithBC(lv.mesh, h.dom, elemMat, nil, c.bcds[l])
			c.coarse = amg.NewDistributed(Ac, h.opts.AMG, h.opts.CoarseRtol, h.opts.CoarseMaxIt)
			break
		}
		if lv.repart {
			continue // pass-through level, never smoothed
		}
		d := h.sharedDiag(l)
		dinv := c.dinv[l]
		for i, v := range d.Data {
			if v != 0 {
				dinv.Data[i] = 1 / v
			} else {
				dinv.Data[i] = 1
			}
		}
		for _, s := range c.ops[l].ownFixed {
			dinv.Data[s] = 1 // Dirichlet identity rows
		}
		if !h.lmaxValid {
			h.lmaxEta[l] = krylov.EstimateLambdaMaxLanczos(c.ops[l], dinv, h.opts.LanczosSteps)
		}
		c.lmax[l] = h.lmaxEta[l]
	}
	h.lmaxValid = true
}

package gmg

import (
	"fmt"

	"rhea/internal/fem"
	"rhea/internal/krylov"
	"rhea/internal/la"
	"rhea/internal/mesh"
	"rhea/internal/morton"
)

// findLeafIn returns the index of the local leaf of m (in tree `tree`)
// that is o or an ancestor of o; it panics if none exists (hierarchy
// invariant broken).
func findLeafIn(m *mesh.Mesh, tree int32, o morton.Octant) int {
	if i := m.FindLocalElement(tree, o); i >= 0 {
		return i
	}
	panic(fmt.Sprintf("gmg: no local coarse leaf contains %v (tree %d)", o, tree))
}

// levelOp is the matrix-free constrained scalar stiffness operator of one
// level for one velocity component: constrained columns read zero,
// constrained owned rows are identity — exactly the matrix
// fem.AssembleScalar would build, never assembled. It implements
// krylov.Operator over the level's node layout.
type levelOp struct {
	lv        *level
	fixedSlot []int32 // slots read as zero
	ownFixed  []int32 // owned identity rows
	xbuf      []float64
	acc       []float64
}

func newLevelOp(lv *level, bcd *fem.BCData) *levelOp {
	o := &levelOp{lv: lv}
	n := lv.sm.NSlots()
	for s := 0; s < n; s++ {
		if bcd.IsSet(lv.sm.GIDAt(s)) {
			o.fixedSlot = append(o.fixedSlot, int32(s))
			if s < lv.sm.NOwned {
				o.ownFixed = append(o.ownFixed, int32(s))
			}
		}
	}
	o.xbuf = make([]float64, n)
	o.acc = make([]float64, n)
	return o
}

// Apply computes y = A x (collective: one ghost gather + scatter-add).
func (o *levelOp) Apply(x, y *la.Vec) {
	sm := o.lv.sm
	n := sm.NOwned
	copy(o.xbuf[:n], x.Data)
	sm.GX.Gather(x.Data, o.xbuf[n:])
	for _, s := range o.fixedSlot {
		o.xbuf[s] = 0
	}
	for i := range o.acc {
		o.acc[i] = 0
	}
	var xe [8]float64
	for ei := range sm.Corners {
		cs := &sm.Corners[ei]
		for a := 0; a < 8; a++ {
			cr := &cs[a]
			var v float64
			for k := 0; k < int(cr.N); k++ {
				v += cr.W[k] * o.xbuf[cr.Slot[k]]
			}
			xe[a] = v
		}
		K := o.lv.kern[ei]
		eta := o.lv.eta[ei]
		for a := 0; a < 8; a++ {
			var s float64
			for b := 0; b < 8; b++ {
				s += K[a][b] * xe[b]
			}
			s *= eta
			cr := &cs[a]
			for k := 0; k < int(cr.N); k++ {
				o.acc[cr.Slot[k]] += cr.W[k] * s
			}
		}
	}
	copy(y.Data, o.acc[:n])
	sm.GX.ScatterAdd(o.acc[n:], y.Data)
	for _, s := range o.ownFixed {
		y.Data[s] = x.Data[s]
	}
}

// Component is the V-cycle preconditioner for one velocity component. It
// approximates the inverse of the constrained variable-viscosity
// stiffness operator; Apply runs one V-cycle with zero initial guess
// (collective), which is SPD and hence safe inside MINRES/CG.
type Component struct {
	h      *Hierarchy
	ops    []*levelOp
	bcds   []*fem.BCData // per-level Dirichlet sets (coarse assembly re-reads its own)
	dinv   []*la.Vec
	lmax   []float64
	coarse krylov.Operator

	// per-level work vectors
	b, x, r, d, z, w []*la.Vec
}

// diagTerm is one precomputed contribution eta[Elem]*Coef to the
// operator diagonal at Slot.
type diagTerm struct {
	Slot, Elem int32
	Coef       float64
}

// buildDiagPlan collects, for every slot of the level, the coefficients
// of its operator-diagonal entry as a linear function of the element
// viscosities: Coef sums wa*wb*K_unit[a][b] over every corner pair of
// Elem whose constraint masters both resolve to the slot's node —
// exactly the terms fem.AssembleScalarDiag would accumulate. The plan is
// boundary-condition independent; Dirichlet rows are overwritten with 1
// by each component after the scan.
func buildDiagPlan(lv *level) []diagTerm {
	var plan []diagTerm
	sm := lv.sm
	for ei := range sm.Corners {
		cs := &sm.Corners[ei]
		K := lv.kern[ei]
		var slots [32]int32
		var coefs [32]float64
		nloc := 0
		for a := 0; a < 8; a++ {
			ca := &cs[a]
			for ia := 0; ia < int(ca.N); ia++ {
				sa, wa := ca.Slot[ia], ca.W[ia]
				var v float64
				for b := 0; b < 8; b++ {
					cb := &cs[b]
					for ib := 0; ib < int(cb.N); ib++ {
						if cb.Slot[ib] == sa {
							v += wa * cb.W[ib] * K[a][b]
						}
					}
				}
				found := false
				for k := 0; k < nloc; k++ {
					if slots[k] == sa {
						coefs[k] += v
						found = true
						break
					}
				}
				if !found {
					slots[nloc], coefs[nloc] = sa, v
					nloc++
				}
			}
		}
		for k := 0; k < nloc; k++ {
			plan = append(plan, diagTerm{Slot: slots[k], Elem: int32(ei), Coef: coefs[k]})
		}
	}
	return plan
}

// Apply computes y = M^-1 x: one V-cycle on the homogeneous-Dirichlet
// error equation, with identity pass-through at constrained dofs to
// match the assembled preconditioner's identity rows (collective).
func (c *Component) Apply(x, y *la.Vec) {
	c.b[0].Copy(x)
	for _, s := range c.ops[0].ownFixed {
		c.b[0].Data[s] = 0
	}
	c.cycle(0)
	y.Copy(c.x[0])
	for _, s := range c.ops[0].ownFixed {
		y.Data[s] = x.Data[s]
	}
}

func (c *Component) cycle(l int) {
	h := c.h
	last := len(h.levels) - 1
	if l == last && h.coarseHere {
		c.coarse.Apply(c.b[l], c.x[l])
		return
	}
	lv := h.levels[l]
	c.x[l].Zero()
	if lv.repart {
		// Shadow of a repartition gap: the level above already smoothed
		// these octants, so pass the residual straight through.
		c.r[l].Copy(c.b[l])
	} else {
		for s := 0; s < h.opts.PreSmooth; s++ {
			c.chebyshev(l)
		}
		// Residual, carried to the next level down (Dirichlet rows
		// masked: the coarse error is zero at constrained nodes).
		c.ops[l].Apply(c.x[l], c.r[l])
		c.r[l].Scale(-1)
		c.r[l].AXPY(1, c.b[l])
	}
	switch {
	case l == last:
		// This rank's stack ends above a repartition gap it is not in:
		// hand the residual to the subset, idle while it works the
		// coarser levels, collect the correction.
		h.partial.NodeForward(c.r[l], nil)
		h.partial.NodeBackward(nil, c.z[l])
	case h.rps[l] != nil:
		// Repartition gap: restriction is the identity permutation onto
		// the subset's partition, prolongation its transpose.
		rp := h.rps[l]
		rp.NodeForward(c.r[l], c.b[l+1])
		for _, s := range c.ops[l+1].ownFixed {
			c.b[l+1].Data[s] = 0
		}
		c.cycle(l + 1)
		rp.NodeBackward(c.x[l+1], c.z[l])
	default:
		h.trans[l].Restrict(c.r[l], c.b[l+1])
		for _, s := range c.ops[l+1].ownFixed {
			c.b[l+1].Data[s] = 0
		}
		c.cycle(l + 1)
		// Prolonged correction (masked at constrained fine dofs).
		h.trans[l].Prolong(c.x[l+1], c.z[l])
	}
	for _, s := range c.ops[l].ownFixed {
		c.z[l].Data[s] = 0
	}
	c.x[l].AXPY(1, c.z[l])
	if !lv.repart {
		for s := 0; s < h.opts.PostSmooth; s++ {
			c.chebyshev(l)
		}
	}
}

// chebyshev runs one Chebyshev(degree) smoothing application on level l,
// improving x toward A^-1 b on the interval [1.1*lmax/ratio, 1.1*lmax]
// of the Jacobi-preconditioned spectrum. Each application costs
// ChebDegree operator applies.
func (c *Component) chebyshev(l int) {
	op, x, b := c.ops[l], c.x[l], c.b[l]
	r, d, z, w := c.r[l], c.d[l], c.z[l], c.w[l]
	beta := 1.1 * c.lmax[l]
	alpha := beta / c.h.opts.ChebRatio
	theta := (beta + alpha) / 2
	delta := (beta - alpha) / 2
	sigma := theta / delta
	rho := 1 / sigma

	op.Apply(x, r)
	r.Scale(-1)
	r.AXPY(1, b)
	z.PointwiseMult(c.dinv[l], r)
	d.Copy(z)
	d.Scale(1 / theta)
	for k := 1; k < c.h.opts.ChebDegree; k++ {
		x.AXPY(1, d)
		op.Apply(d, w)
		r.AXPY(-1, w)
		z.PointwiseMult(c.dinv[l], r)
		rhoNew := 1 / (2*sigma - rho)
		d.Scale(rhoNew * rho)
		d.AXPY(2*rhoNew/delta, z)
		rho = rhoNew
	}
	x.AXPY(1, d)
}

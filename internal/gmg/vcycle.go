package gmg

import (
	"fmt"
	"sort"

	"rhea/internal/fem"
	"rhea/internal/krylov"
	"rhea/internal/la"
	"rhea/internal/mesh"
	"rhea/internal/morton"
)

// findLeafIn returns the index of the local leaf of m (in tree `tree`)
// that is o or an ancestor of o; it panics if none exists (hierarchy
// invariant broken).
func findLeafIn(m *mesh.Mesh, tree int32, o morton.Octant) int {
	if i := m.FindLocalElement(tree, o); i >= 0 {
		return i
	}
	panic(fmt.Sprintf("gmg: no local coarse leaf contains %v (tree %d)", o, tree))
}

// levelOp is the matrix-free constrained scalar stiffness operator of one
// level for one velocity component: constrained columns read zero,
// constrained owned rows are identity — exactly the matrix
// fem.AssembleScalar would build, never assembled. It implements
// krylov.Operator over the level's node layout.
type levelOp struct {
	lv        *level
	fixedSlot []int32 // slots read as zero
	ownFixed  []int32 // owned identity rows
	xbuf      []float64
	acc       []float64
}

func newLevelOp(lv *level, bcd *fem.BCData) *levelOp {
	o := &levelOp{lv: lv}
	n := lv.sm.NSlots()
	for s := 0; s < n; s++ {
		if bcd.IsSet(lv.sm.GIDAt(s)) {
			o.fixedSlot = append(o.fixedSlot, int32(s))
			if s < lv.sm.NOwned {
				o.ownFixed = append(o.ownFixed, int32(s))
			}
		}
	}
	o.xbuf = make([]float64, n)
	o.acc = make([]float64, n)
	return o
}

// Apply computes y = A x (collective: one ghost gather + scatter-add).
func (o *levelOp) Apply(x, y *la.Vec) {
	sm := o.lv.sm
	n := sm.NOwned
	copy(o.xbuf[:n], x.Data)
	sm.GX.Gather(x.Data, o.xbuf[n:])
	for _, s := range o.fixedSlot {
		o.xbuf[s] = 0
	}
	for i := range o.acc {
		o.acc[i] = 0
	}
	var xe [8]float64
	for ei := range sm.Corners {
		cs := &sm.Corners[ei]
		for a := 0; a < 8; a++ {
			cr := &cs[a]
			var v float64
			for k := 0; k < int(cr.N); k++ {
				v += cr.W[k] * o.xbuf[cr.Slot[k]]
			}
			xe[a] = v
		}
		K := o.lv.kern[ei]
		eta := o.lv.eta[ei]
		for a := 0; a < 8; a++ {
			var s float64
			for b := 0; b < 8; b++ {
				s += K[a][b] * xe[b]
			}
			s *= eta
			cr := &cs[a]
			for k := 0; k < int(cr.N); k++ {
				o.acc[cr.Slot[k]] += cr.W[k] * s
			}
		}
	}
	copy(y.Data, o.acc[:n])
	sm.GX.ScatterAdd(o.acc[n:], y.Data)
	for _, s := range o.ownFixed {
		y.Data[s] = x.Data[s]
	}
}

// Component is the V-cycle preconditioner for one velocity component. It
// approximates the inverse of the constrained variable-viscosity
// stiffness operator; Apply runs one V-cycle with zero initial guess
// (collective), which is SPD and hence safe inside MINRES/CG.
type Component struct {
	h      *Hierarchy
	ops    []*levelOp
	dinv   []*la.Vec
	lmax   []float64
	coarse krylov.Operator
	cplan  *coarsePlan // coarsest-level pattern + value plan

	// per-level work vectors (r,d,z,w only on smoothed levels)
	b, x, r, d, z, w []*la.Vec
}

// diagTerm is one precomputed contribution eta[Elem]*Coef to the
// operator diagonal at Slot.
type diagTerm struct {
	Slot, Elem int32
	Coef       float64
}

// coarsePlan caches the mesh/BC-dependent structure of the coarsest
// level's globally replicated CSR: the sparsity pattern (a superset
// assembled from |K| so viscosity-dependent cancellation can never drop
// an entry), the viscosity-independent values (Dirichlet identity rows),
// and this rank's per-entry contributions as linear functions of the
// element viscosities. A refresh then costs one flat scan plus one
// vector all-reduce instead of a full distributed assembly and gather.
type coarsePlan struct {
	rowPtr []int32
	colIdx []int32
	base   []float64 // eta-independent values (identity rows)
	terms  []matTerm // this rank's contributions
}

// matTerm is one precomputed contribution eta[Elem]*Coef to global CSR
// entry Entry.
type matTerm struct {
	Entry, Elem int32
	Coef        float64
}

// buildCoarsePlan assembles the coarsest level's global pattern and
// contribution plan (collective).
func buildCoarsePlan(lv *level, dom fem.Domain, bcd *fem.BCData) *coarsePlan {
	m := lv.mesh
	// Pattern from absolute-value kernels: a superset of the true
	// sparsity for every positive viscosity field.
	absMat := func(ei int, _ [3]float64) [8][8]float64 {
		K := *lv.kern[ei]
		for a := 0; a < 8; a++ {
			for b := 0; b < 8; b++ {
				if K[a][b] < 0 {
					K[a][b] = -K[a][b]
				}
			}
		}
		return K
	}
	Ap, _, _ := fem.AssembleScalarWithBC(m, dom, absMat, nil, bcd)
	g := Ap.GatherGlobalCSR()
	p := &coarsePlan{rowPtr: g.RowPtr, colIdx: g.ColIdx, base: make([]float64, g.NNZ())}

	// Identity rows: gather the global Dirichlet flags and set their
	// diagonal entries.
	flag := la.NewVec(m.Layout())
	for i := 0; i < m.NumOwned; i++ {
		if bcd.IsSet(m.Offset + int64(i)) {
			flag.Data[i] = 1
		}
	}
	full := la.GatherGlobal(flag)
	for row, f := range full {
		if f != 0 {
			p.base[p.findEntry(int64(row), int64(row))] = 1
		}
	}

	// Local element contributions to unconstrained entries.
	for ei := range m.Corners {
		cs := &m.Corners[ei]
		K := lv.kern[ei]
		for a := 0; a < 8; a++ {
			for ia := 0; ia < int(cs[a].N); ia++ {
				ga, wa := cs[a].GID[ia], cs[a].W[ia]
				if bcd.IsSet(ga) {
					continue // identity row
				}
				for b := 0; b < 8; b++ {
					for ib := 0; ib < int(cs[b].N); ib++ {
						gb, wb := cs[b].GID[ib], cs[b].W[ib]
						if bcd.IsSet(gb) {
							continue // eliminated column
						}
						coef := wa * wb * K[a][b]
						if coef == 0 {
							continue
						}
						p.terms = append(p.terms, matTerm{
							Entry: int32(p.findEntry(ga, gb)), Elem: int32(ei), Coef: coef})
					}
				}
			}
		}
	}
	return p
}

// findEntry locates the CSR entry (row, col) in the global pattern
// (columns are sorted within each row); it panics if absent, which would
// mean the pattern superset property is broken.
func (p *coarsePlan) findEntry(row, col int64) int {
	lo, hi := int(p.rowPtr[row]), int(p.rowPtr[row+1])
	i := lo + sort.Search(hi-lo, func(i int) bool { return int64(p.colIdx[lo+i]) >= col })
	if i < hi && int64(p.colIdx[i]) == col {
		return i
	}
	panic(fmt.Sprintf("gmg: coarse pattern is missing entry (%d,%d)", row, col))
}

// values computes the replicated global CSR values for the level's
// current viscosity (collective: one vector all-reduce).
func (p *coarsePlan) values(lv *level) *la.CSR {
	contrib := make([]float64, len(p.base))
	for _, t := range p.terms {
		contrib[t.Entry] += lv.eta[t.Elem] * t.Coef
	}
	sum := lv.mesh.Rank.AllreduceVec(contrib)
	vals := make([]float64, len(p.base))
	for i := range vals {
		vals[i] = p.base[i] + sum[i]
	}
	return &la.CSR{N: int(lv.mesh.NGlobal), RowPtr: p.rowPtr, ColIdx: p.colIdx, Vals: vals}
}

// buildDiagPlan collects, for every slot of the level, the coefficients
// of its operator-diagonal entry as a linear function of the element
// viscosities: Coef sums wa*wb*K_unit[a][b] over every corner pair of
// Elem whose constraint masters both resolve to the slot's node —
// exactly the terms fem.AssembleScalarDiag would accumulate. The plan is
// boundary-condition independent; Dirichlet rows are overwritten with 1
// by each component after the scan.
func buildDiagPlan(lv *level) []diagTerm {
	var plan []diagTerm
	sm := lv.sm
	for ei := range sm.Corners {
		cs := &sm.Corners[ei]
		K := lv.kern[ei]
		var slots [32]int32
		var coefs [32]float64
		nloc := 0
		for a := 0; a < 8; a++ {
			ca := &cs[a]
			for ia := 0; ia < int(ca.N); ia++ {
				sa, wa := ca.Slot[ia], ca.W[ia]
				var v float64
				for b := 0; b < 8; b++ {
					cb := &cs[b]
					for ib := 0; ib < int(cb.N); ib++ {
						if cb.Slot[ib] == sa {
							v += wa * cb.W[ib] * K[a][b]
						}
					}
				}
				found := false
				for k := 0; k < nloc; k++ {
					if slots[k] == sa {
						coefs[k] += v
						found = true
						break
					}
				}
				if !found {
					slots[nloc], coefs[nloc] = sa, v
					nloc++
				}
			}
		}
		for k := 0; k < nloc; k++ {
			plan = append(plan, diagTerm{Slot: slots[k], Elem: int32(ei), Coef: coefs[k]})
		}
	}
	return plan
}

// Apply computes y = M^-1 x: one V-cycle on the homogeneous-Dirichlet
// error equation, with identity pass-through at constrained dofs to
// match the assembled preconditioner's identity rows (collective).
func (c *Component) Apply(x, y *la.Vec) {
	c.b[0].Copy(x)
	for _, s := range c.ops[0].ownFixed {
		c.b[0].Data[s] = 0
	}
	c.cycle(0)
	y.Copy(c.x[0])
	for _, s := range c.ops[0].ownFixed {
		y.Data[s] = x.Data[s]
	}
}

func (c *Component) cycle(l int) {
	last := len(c.h.levels) - 1
	if l == last {
		c.coarse.Apply(c.b[l], c.x[l])
		return
	}
	// Pre-smooth with zero initial guess.
	c.x[l].Zero()
	for s := 0; s < c.h.opts.PreSmooth; s++ {
		c.chebyshev(l)
	}
	// Residual, restricted to the coarse level (Dirichlet rows masked:
	// the coarse error is zero at constrained nodes).
	c.ops[l].Apply(c.x[l], c.r[l])
	c.r[l].Scale(-1)
	c.r[l].AXPY(1, c.b[l])
	c.h.trans[l].Restrict(c.r[l], c.b[l+1])
	for _, s := range c.ops[l+1].ownFixed {
		c.b[l+1].Data[s] = 0
	}
	c.cycle(l + 1)
	// Prolonged correction (masked at constrained fine dofs).
	c.h.trans[l].Prolong(c.x[l+1], c.z[l])
	for _, s := range c.ops[l].ownFixed {
		c.z[l].Data[s] = 0
	}
	c.x[l].AXPY(1, c.z[l])
	for s := 0; s < c.h.opts.PostSmooth; s++ {
		c.chebyshev(l)
	}
}

// chebyshev runs one Chebyshev(degree) smoothing application on level l,
// improving x toward A^-1 b on the interval [1.1*lmax/ratio, 1.1*lmax]
// of the Jacobi-preconditioned spectrum. Each application costs
// ChebDegree operator applies.
func (c *Component) chebyshev(l int) {
	op, x, b := c.ops[l], c.x[l], c.b[l]
	r, d, z, w := c.r[l], c.d[l], c.z[l], c.w[l]
	beta := 1.1 * c.lmax[l]
	alpha := beta / c.h.opts.ChebRatio
	theta := (beta + alpha) / 2
	delta := (beta - alpha) / 2
	sigma := theta / delta
	rho := 1 / sigma

	op.Apply(x, r)
	r.Scale(-1)
	r.AXPY(1, b)
	z.PointwiseMult(c.dinv[l], r)
	d.Copy(z)
	d.Scale(1 / theta)
	for k := 1; k < c.h.opts.ChebDegree; k++ {
		x.AXPY(1, d)
		op.Apply(d, w)
		r.AXPY(-1, w)
		z.PointwiseMult(c.dinv[l], r)
		rhoNew := 1 / (2*sigma - rho)
		d.Scale(rhoNew * rho)
		d.AXPY(2*rhoNew/delta, z)
		rho = rhoNew
	}
	x.AXPY(1, d)
}

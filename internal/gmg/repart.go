package gmg

// Rank-subset agglomeration: once a level has too few elements per rank,
// its octants are repartitioned onto a sub-communicator of the first
// newP ranks and the hierarchy continues there, with ranks outside the
// subset idle below that gap. The repart plan built here is the gap's
// coupling: a permutation of the level's node values between the two
// partitions of the *same* global mesh (NodeForward carries residuals
// down, NodeBackward carries corrections up, ElemForward carries
// per-element viscosities down).
//
// Node identity across the two partitions cannot use global node
// numbers — the numbering is partition-dependent (each rank numbers its
// owned nodes by canonical key, and ownership moves with the leaves) —
// so the plan matches nodes by their canonical (tree, position) keys.
// Each sending rank computes the receiving owner locally: a node is
// owned by whichever rank owns the leaf containing its canonical
// incident finest cell, and that leaf's global index (partition-
// independent curve order) names the destination block.

import (
	"fmt"

	"rhea/internal/forest"
	"rhea/internal/la"
	"rhea/internal/mesh"
	"rhea/internal/morton"
	"rhea/internal/octree"
	"rhea/internal/sim"
)

// repart couples one level's mesh (on comm) with its repartitioned copy
// (on sub, the first newP ranks of comm). All of comm participates in
// every transfer; ranks outside sub have empty receive plans.
type repart struct {
	comm *sim.Comm // the pre-agglomeration level's communicator
	sub  *sim.Comm // the agglomerated communicator (comm ranks [0, newP))

	// Element plan: contiguous curve-order leaf ranges. eSendCnt[k]
	// leaves go to comm rank eSendTo[k]; eRecvCnt[k] arrive from
	// eRecvFrom[k] (ascending, concatenating to the shadow's leaf order).
	eSendTo, eRecvFrom []int
	eSendCnt, eRecvCnt []int
	nElems             int // local elements on the shadow side

	// Node plan: nSendIdx[k] lists the fine-side owned node indices
	// shipped to nSendTo[k]; nRecvIdx[k] the shadow-side owned node
	// indices filled from nRecvFrom[k], aligned with the sender's order.
	nSendTo, nRecvFrom []int
	nSendIdx, nRecvIdx [][]int32
}

// nodeKeyMsg carries canonical node keys between partitions.
type nodeKeyMsg struct {
	trees []int32
	pos   [][3]uint32
}

// pow2Floor returns the largest power of two <= n (n >= 1).
func pow2Floor(n int64) int64 {
	p := int64(1)
	for p*2 <= n {
		p *= 2
	}
	return p
}

// blockOwner returns which of newP contiguous even shares (remainders to
// the low shares, as in the tree partitioners) contains global index gi.
func blockOwner(total, newP, gi int64) int {
	q, rem := total/newP, total%newP
	cut := rem * (q + 1)
	if gi < cut {
		return int(gi / (q + 1))
	}
	return int(rem + (gi-cut)/q)
}

// blockRange returns block j's [lo, hi) of the even-share partition.
func blockRange(total, newP, j int64) (int64, int64) {
	q, rem := total/newP, total%newP
	lo := q*j + j
	if j >= rem {
		lo = q*j + rem
	}
	hi := lo + q
	if j < rem {
		hi++
	}
	return lo, hi
}

// ownerCell returns the canonical incident finest cell that determines
// ownership of owned node i — the rule the mesh extraction applies — so
// the repartitioned owner can be computed from the element partition
// alone.
func ownerCell(m *mesh.Mesh, i int) (int32, morton.Octant) {
	if m.Trees != nil {
		c := m.OwnedCell[i]
		return c.Tree, c.O
	}
	P := m.OwnedPos[i]
	var q [3]uint32
	for a := 0; a < 3; a++ {
		q[a] = P[a]
		if q[a] >= morton.RootLen {
			q[a] = morton.RootLen - 1
		}
	}
	return 0, morton.Octant{X: q[0], Y: q[1], Z: q[2], Level: morton.MaxLevel}
}

// buildRepart repartitions the level mesh onto the first newP ranks of
// its communicator (collective on m.Rank): it derives the
// sub-communicator, ships the leaves to their new owners, extracts the
// repartitioned mesh there, and builds the node/element plans. The
// returned mesh is nil on ranks outside the subset — they keep the plan
// (their send side) and go idle below this gap.
func buildRepart(m *mesh.Mesh, newP int) (*repart, *mesh.Mesh) {
	comm := m.Rank
	members := make([]int, newP)
	for i := range members {
		members[i] = i
	}
	sub := comm.Subset(members)
	rp := &repart{comm: comm, sub: sub}

	// Element partition: current offsets vs target blocks.
	ne := int64(len(m.Leaves))
	counts := comm.AllgatherInt64(ne)
	offs := make([]int64, len(counts)+1)
	for i, c := range counts {
		offs[i+1] = offs[i] + c
	}
	E := offs[len(offs)-1]
	np := int64(newP)
	myOff := offs[comm.ID()]

	// Send side: split my contiguous leaf range over the target blocks.
	for gi := myOff; gi < myOff+ne; {
		j := blockOwner(E, np, gi)
		_, bhi := blockRange(E, np, int64(j))
		hi := myOff + ne
		if bhi < hi {
			hi = bhi
		}
		rp.eSendTo = append(rp.eSendTo, j)
		rp.eSendCnt = append(rp.eSendCnt, int(hi-gi))
		gi = hi
	}
	// Receive side: my block against the current rank ranges.
	if sub.Member() {
		blo, bhi := blockRange(E, np, int64(sub.ID()))
		rp.nElems = int(bhi - blo)
		for a := 0; a < comm.Size(); a++ {
			lo, hi := offs[a], offs[a+1]
			if lo < blo {
				lo = blo
			}
			if hi > bhi {
				hi = bhi
			}
			if lo < hi {
				rp.eRecvFrom = append(rp.eRecvFrom, a)
				rp.eRecvCnt = append(rp.eRecvCnt, int(hi-lo))
			}
		}
	}

	// Ship the leaves and extract the repartitioned mesh on the subset.
	var sm *mesh.Mesh
	if m.Trees != nil {
		payloads := make([]any, len(rp.eSendTo))
		nbytes := make([]int, len(rp.eSendTo))
		off := 0
		for k, cnt := range rp.eSendCnt {
			fo := make([]forest.Octant, cnt)
			for i := 0; i < cnt; i++ {
				fo[i] = forest.Octant{Tree: m.Trees[off+i], O: m.Leaves[off+i]}
			}
			payloads[k] = fo
			nbytes[k] = 20 * cnt
			off += cnt
		}
		in := comm.NeighborExchange(rp.eSendTo, payloads, nbytes, rp.eRecvFrom)
		if sub.Member() {
			leaves := make([]forest.Octant, 0, rp.nElems)
			for _, d := range in {
				leaves = append(leaves, d.([]forest.Octant)...)
			}
			sm = mesh.ExtractForest(forest.FromLeaves(sub, m.Conn, leaves), m.Geom)
		}
	} else {
		payloads := make([]any, len(rp.eSendTo))
		nbytes := make([]int, len(rp.eSendTo))
		off := 0
		for k, cnt := range rp.eSendCnt {
			payloads[k] = append([]morton.Octant(nil), m.Leaves[off:off+cnt]...)
			nbytes[k] = 16 * cnt
			off += cnt
		}
		in := comm.NeighborExchange(rp.eSendTo, payloads, nbytes, rp.eRecvFrom)
		if sub.Member() {
			leaves := make([]morton.Octant, 0, rp.nElems)
			for _, d := range in {
				leaves = append(leaves, d.([]morton.Octant)...)
			}
			sm = mesh.Extract(octree.FromLeaves(sub, leaves))
		}
	}

	// Node plan: group my owned nodes by their new owner (the block
	// containing their canonical incident leaf, which is local to me).
	destIdx := map[int][]int32{}
	for i := 0; i < m.NumOwned; i++ {
		tree, cell := ownerCell(m, i)
		li := m.FindLocalElement(tree, cell)
		if li < 0 {
			panic(fmt.Sprintf("gmg: owned node %d's canonical cell is not local", i))
		}
		j := blockOwner(E, np, myOff+int64(li))
		destIdx[j] = append(destIdx[j], int32(i))
	}
	var dests []int
	for j := range destIdx {
		dests = append(dests, j)
	}
	sortInts(dests)
	msgs := make([]any, len(dests))
	sizes := make([]int, len(dests))
	for k, j := range dests {
		idx := destIdx[j]
		msg := nodeKeyMsg{trees: make([]int32, len(idx)), pos: make([][3]uint32, len(idx))}
		for t, i := range idx {
			if m.Trees != nil {
				msg.trees[t] = m.OwnedTree[i]
			}
			msg.pos[t] = m.OwnedPos[i]
		}
		msgs[k] = msg
		sizes[k] = 16 * len(idx)
		rp.nSendTo = append(rp.nSendTo, j)
		rp.nSendIdx = append(rp.nSendIdx, idx)
	}
	froms, datas := comm.AlltoallvSparse(dests, msgs, sizes)
	for k, from := range froms {
		msg := datas[k].(nodeKeyMsg)
		idx := make([]int32, len(msg.pos))
		for t := range msg.pos {
			li, ok := sm.LocalIndexTree(msg.trees[t], msg.pos[t])
			if !ok {
				panic(fmt.Sprintf("gmg: repartitioned mesh does not own node %v (tree %d)",
					msg.pos[t], msg.trees[t]))
			}
			idx[t] = li
		}
		rp.nRecvFrom = append(rp.nRecvFrom, from)
		rp.nRecvIdx = append(rp.nRecvIdx, idx)
	}
	return rp, sm
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j] < v[j-1]; j-- {
			v[j], v[j-1] = v[j-1], v[j]
		}
	}
}

// NodeForward permutes fine-partition node values into the shadow
// partition (collective on comm): dst[shadow index] = src[fine index].
// Pass dst nil on ranks outside the subset (they only send).
func (rp *repart) NodeForward(src, dst *la.Vec) {
	payloads := make([]any, len(rp.nSendTo))
	nbytes := make([]int, len(rp.nSendTo))
	for k, idx := range rp.nSendIdx {
		vals := make([]float64, len(idx))
		for t, i := range idx {
			vals[t] = src.Data[i]
		}
		payloads[k] = vals
		nbytes[k] = 8 * len(idx)
	}
	in := rp.comm.NeighborExchange(rp.nSendTo, payloads, nbytes, rp.nRecvFrom)
	for k, d := range in {
		vals := d.([]float64)
		for t, li := range rp.nRecvIdx[k] {
			dst.Data[li] = vals[t]
		}
	}
}

// NodeBackward permutes shadow-partition node values back into the fine
// partition (collective on comm): the exact transpose of NodeForward.
// Pass src nil on ranks outside the subset (they only receive).
func (rp *repart) NodeBackward(src, dst *la.Vec) {
	payloads := make([]any, len(rp.nRecvFrom))
	nbytes := make([]int, len(rp.nRecvFrom))
	for k, idx := range rp.nRecvIdx {
		vals := make([]float64, len(idx))
		for t, li := range idx {
			vals[t] = src.Data[li]
		}
		payloads[k] = vals
		nbytes[k] = 8 * len(idx)
	}
	in := rp.comm.NeighborExchange(rp.nRecvFrom, payloads, nbytes, rp.nSendTo)
	for k, d := range in {
		vals := d.([]float64)
		for t, i := range rp.nSendIdx[k] {
			dst.Data[i] = vals[t]
		}
	}
}

// ElemForward ships per-element values (viscosities) into the shadow
// partition's leaf order (collective on comm); the returned slice is
// empty on ranks outside the subset. Identical octants on both sides
// make this a pure permutation — no averaging.
func (rp *repart) ElemForward(eta []float64) []float64 {
	payloads := make([]any, len(rp.eSendTo))
	nbytes := make([]int, len(rp.eSendTo))
	off := 0
	for k, cnt := range rp.eSendCnt {
		payloads[k] = eta[off : off+cnt : off+cnt]
		nbytes[k] = 8 * cnt
		off += cnt
	}
	in := rp.comm.NeighborExchange(rp.eSendTo, payloads, nbytes, rp.eRecvFrom)
	out := make([]float64, 0, rp.nElems)
	for _, d := range in {
		out = append(out, d.([]float64)...)
	}
	return out
}
